package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"extradeep/internal/aggregate"
	"extradeep/internal/epoch"
	"extradeep/internal/ingest"
	"extradeep/internal/measurement"
	"extradeep/internal/modeling"
	"extradeep/internal/profile"
)

// ModelSet holds every model created for one application. (It moved here
// from internal/core when the fit stage became part of the pipeline;
// core keeps a type alias for compatibility.)
type ModelSet struct {
	// Kernel maps metric → callpath → fitted model, one per application
	// kernel that survived filtering.
	Kernel map[measurement.Metric]map[string]*modeling.Model
	// App maps the synthetic application callpaths (epoch.AppPath,
	// epoch.CompPath, epoch.CommPath, epoch.MemPath) to their
	// training-time-per-epoch models.
	App map[string]*modeling.Model
	// KernelExperiment and AppExperiment are the derived per-epoch
	// measurement sets the models were fitted on.
	KernelExperiment *measurement.Experiment
	AppExperiment    *measurement.Experiment
}

// KernelCount returns the number of fitted kernel models across metrics.
func (m *ModelSet) KernelCount() int {
	n := 0
	for _, byPath := range m.Kernel {
		n += len(byPath)
	}
	return n
}

// Ingest is the pipeline's first stage: fault-tolerant profile loading
// with quarantine (internal/ingest). The returned report, its warnings,
// and the error semantics — including the degradation gate and
// strict-mode abort — are exactly those of ingest.LoadDir; the pipeline
// adds only stage timing and counters.
func (p *Pipeline) Ingest(ctx context.Context, dir, format string, opts ingest.Options) (*ingest.Report, error) {
	var report *ingest.Report
	err := p.observe(StageIngest, func() (Counters, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		report, err = ingest.LoadDir(dir, format, opts)
		if report == nil {
			return nil, err
		}
		return Counters{
			"loaded":      len(report.Profiles),
			"quarantined": len(report.Quarantined),
		}, err
	})
	return report, err
}

// Aggregate groups raw profiles by configuration and runs the Fig. 2
// aggregation pipeline on each group, returning one aggregate per
// application configuration, sorted by measurement point. The per-group
// aggregations are independent and fan out across the worker pool.
func (p *Pipeline) Aggregate(ctx context.Context, profiles []*profile.Profile) ([]*aggregate.ConfigAggregate, error) {
	var aggs []*aggregate.ConfigAggregate
	err := p.observe(StageAggregate, func() (Counters, error) {
		if len(profiles) == 0 {
			return nil, errors.New("pipeline: no profiles")
		}
		groups := profile.GroupByConfig(profiles)
		keys := profile.SortedKeys(groups)
		out := make([]*aggregate.ConfigAggregate, len(keys))
		err := forEach(ctx, p.cfg.Workers, len(keys), func(i int) error {
			agg, err := aggregate.Aggregate(groups[keys[i]], p.cfg.Aggregation)
			if err != nil {
				return fmt.Errorf("pipeline: aggregating %s %s: %w", keys[i].App, keys[i].Point, err)
			}
			out[i] = agg
			return nil
		})
		if err != nil {
			return Counters{"profiles": len(profiles)}, err
		}
		sort.SliceStable(out, func(i, j int) bool { return out[i].Point.Less(out[j].Point) })
		aggs = out
		return Counters{"profiles": len(profiles), "configurations": len(out)}, nil
	})
	if err != nil {
		return nil, err
	}
	return aggs, nil
}

// fitTask is one unit of the fit stage: a single (metric, callpath)
// series to model. Tasks are enumerated in sorted order so the task list
// — and therefore the result assembly — is identical for every worker
// count.
type fitTask struct {
	metric measurement.Metric
	path   string
	series *measurement.Series
	app    bool // application-level series (no silent-skip bookkeeping difference, only assembly target)
}

// BuildModels runs the EpochExtrapolate and Fit stages: it derives the
// per-epoch kernel and application experiments from the aggregates
// (Eqs. 2–4), filters kernels observed in too few configurations, and
// fans the per-kernel PMNF hypothesis search (Eq. 5) out across the
// worker pool. Kernels whose series cannot be modeled (degenerate data)
// are skipped silently, mirroring the tool's historical behaviour.
func (p *Pipeline) BuildModels(ctx context.Context, aggs []*aggregate.ConfigAggregate, setup epoch.SetupFunc) (*ModelSet, error) {
	minConfigs := p.cfg.MinConfigurations
	if minConfigs <= 0 {
		minConfigs = measurement.MinModelingPoints
	}

	var kernelExp, appExp *measurement.Experiment
	err := p.observe(StageEpoch, func() (Counters, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		kernelExp, err = epoch.BuildKernelExperiment(aggs, setup)
		if err != nil {
			return nil, err
		}
		filtered := kernelExp.FilterInsufficient(minConfigs)
		appExp, err = epoch.BuildApplicationExperiment(aggs, setup)
		if err != nil {
			return nil, err
		}
		return Counters{"configurations": len(aggs), "filtered_series": filtered}, nil
	})
	if err != nil {
		return nil, err
	}

	ms := &ModelSet{
		Kernel:           make(map[measurement.Metric]map[string]*modeling.Model),
		App:              make(map[string]*modeling.Model),
		KernelExperiment: kernelExp,
		AppExperiment:    appExp,
	}
	err = p.observe(StageFit, func() (Counters, error) {
		// Enumerate tasks in sorted (metric, callpath) order; Metrics()
		// and Callpaths() already sort.
		var tasks []fitTask
		for _, metric := range kernelExp.Metrics() {
			for _, path := range kernelExp.Callpaths(metric) {
				tasks = append(tasks, fitTask{metric: metric, path: path, series: kernelExp.Series(metric, path)})
			}
		}
		for _, path := range appExp.Callpaths(measurement.MetricTime) {
			tasks = append(tasks, fitTask{metric: measurement.MetricTime, path: path, series: appExp.Series(measurement.MetricTime, path), app: true})
		}

		// Fan out: one slot per task, written only by its own goroutine.
		models := make([]*modeling.Model, len(tasks))
		err := forEach(ctx, p.cfg.Workers, len(tasks), func(i int) error {
			m, err := modeling.FitSeries(tasks[i].series, p.cfg.Modeling)
			if err != nil {
				return nil // unmodelable series (constant-zero, degenerate): skip
			}
			models[i] = m
			return nil
		})
		if err != nil {
			return Counters{"tasks": len(tasks)}, err
		}

		// Deterministic reduction in task order.
		fitted := 0
		for i, t := range tasks {
			if models[i] == nil {
				continue
			}
			fitted++
			if t.app {
				ms.App[t.path] = models[i]
				continue
			}
			byPath := ms.Kernel[t.metric]
			if byPath == nil {
				byPath = make(map[string]*modeling.Model)
				ms.Kernel[t.metric] = byPath
			}
			byPath[t.path] = models[i]
		}
		if len(ms.App) == 0 {
			return Counters{"tasks": len(tasks), "fitted": fitted},
				errors.New("pipeline: no application model could be created")
		}
		return Counters{"tasks": len(tasks), "fitted": fitted, "skipped": len(tasks) - fitted}, nil
	})
	if err != nil {
		return nil, err
	}
	return ms, nil
}
