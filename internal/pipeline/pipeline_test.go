package pipeline

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"extradeep/internal/aggregate"
	"extradeep/internal/epoch"
	"extradeep/internal/ingest"
	"extradeep/internal/modeling"
	"extradeep/internal/profile"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

// writeCampaign simulates a 5-configuration × 2-repetition weak-scaling
// campaign into a fresh directory and returns it with the matching
// training-setup function.
func writeCampaign(t testing.TB) (string, epoch.SetupFunc) {
	t.Helper()
	b, err := engine.ByName("imdb")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store := &profile.Store{Dir: dir}
	strat := parallel.DataParallel{}
	for _, ranks := range []int{2, 4, 6, 8, 10} {
		cfg := engine.RunConfig{
			System: hardware.DEEP(), Strategy: strat,
			Ranks: ranks, WeakScaling: true, Seed: 7, SampleRanks: 1,
		}
		for rep := 1; rep <= 2; rep++ {
			ps, err := engine.Profile(b, cfg, rep, true)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range ps {
				if err := store.Write(p); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return dir, engine.SetupFunc(b, strat, true)
}

func testSpec(dir string, setup epoch.SetupFunc) RunSpec {
	return RunSpec{
		ProfilesDir: dir,
		Format:      "json",
		Ingest:      ingest.Options{Policy: ingest.Lenient},
		Setup:       setup,
		Analyze:     AnalyzeOptions{Predict: 40, CoresPerRank: 1, TopKernels: 10},
	}
}

func TestRunProducesFullReport(t *testing.T) {
	dir, setup := writeCampaign(t)
	p := New(Config{Workers: 4})
	res, err := p.Run(context.Background(), testSpec(dir, setup))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ingest.Profiles) != 10 {
		t.Errorf("loaded %d profiles, want 10", len(res.Ingest.Profiles))
	}
	if len(res.Aggregates) != 5 {
		t.Errorf("aggregated %d configurations, want 5", len(res.Aggregates))
	}
	if res.Models.KernelCount() == 0 {
		t.Error("no kernel models fitted")
	}
	for _, want := range []string{
		"application models (training time per epoch):",
		"top 10 kernels by growth trend",
		"predicted training time per epoch @ 40 ranks:",
		"scalability and cost per measured configuration:",
		"most cost-effective configuration:",
	} {
		if !strings.Contains(res.Report, want) {
			t.Errorf("report lacks %q:\n%s", want, res.Report)
		}
	}
}

// TestObserverSeesStagesInOrder verifies the observer contract: every
// built-in stage fires exactly once, in pipeline order, with counters.
func TestObserverSeesStagesInOrder(t *testing.T) {
	dir, setup := writeCampaign(t)
	col := &Collector{}
	p := New(Config{Workers: 2, Observer: col})
	if _, err := p.Run(context.Background(), testSpec(dir, setup)); err != nil {
		t.Fatal(err)
	}
	var got []Stage
	for _, s := range col.Stats() {
		got = append(got, s.Stage)
		if s.Err != nil {
			t.Errorf("stage %s reported error %v", s.Stage, s.Err)
		}
	}
	want := []Stage{StageIngest, StageAggregate, StageEpoch, StageFit, StageAnalyze, StageReport}
	if len(got) != len(want) {
		t.Fatalf("stages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stages = %v, want %v", got, want)
		}
	}
	stats := col.Stats()
	if stats[0].Counters["loaded"] != 10 {
		t.Errorf("ingest counters = %v, want loaded=10", stats[0].Counters)
	}
	if stats[1].Counters["configurations"] != 5 {
		t.Errorf("aggregate counters = %v, want configurations=5", stats[1].Counters)
	}
	if stats[3].Counters["tasks"] == 0 || stats[3].Counters["fitted"] == 0 {
		t.Errorf("fit counters = %v, want non-zero tasks and fitted", stats[3].Counters)
	}
}

func TestLogObserverWritesStageLines(t *testing.T) {
	var buf bytes.Buffer
	obs := &LogObserver{W: &buf}
	err := Observe(obs, StageFit, func() (Counters, error) {
		return Counters{"tasks": 12, "fitted": 11}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	for _, want := range []string{"stage fit:", "tasks=12", "fitted=11"} {
		if !strings.Contains(line, want) {
			t.Errorf("log line lacks %q: %q", want, line)
		}
	}
}

func TestAggregateRejectsEmptyInput(t *testing.T) {
	p := New(Config{})
	if _, err := p.Aggregate(context.Background(), nil); err == nil {
		t.Error("empty profile set accepted")
	}
}

func TestIngestKeepsQuarantineSemantics(t *testing.T) {
	dir, _ := writeCampaign(t)
	p := New(Config{})
	rep, err := p.Ingest(context.Background(), dir, "json", ingest.Options{Policy: ingest.Lenient})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Profiles) != 10 || len(rep.Quarantined) != 0 {
		t.Errorf("loaded %d / quarantined %d, want 10/0", len(rep.Profiles), len(rep.Quarantined))
	}
	if err := rep.Gate(ingest.Options{Policy: ingest.Lenient}); err != nil {
		t.Errorf("gate refused a healthy campaign: %v", err)
	}
	// Unknown directory: the ingest error passes through untouched.
	if _, err := p.Ingest(context.Background(), dir+"/nope", "json", ingest.Options{}); err == nil {
		t.Error("missing directory accepted")
	}
}

// TestBuildModelsMatchesSequentialAtAnyWorkerCount is the in-package
// determinism check: the fitted model set must be identical (function
// strings, quality stats, callpath sets) for every worker count.
func TestBuildModelsMatchesSequentialAtAnyWorkerCount(t *testing.T) {
	dir, setup := writeCampaign(t)
	seq := New(Config{Workers: 1})
	ctx := context.Background()
	rep, err := seq.Ingest(ctx, dir, "json", ingest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	aggs, err := seq.Aggregate(ctx, rep.Profiles)
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.BuildModels(ctx, aggs, setup)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par := New(Config{Workers: workers})
		got, err := par.BuildModels(ctx, aggs, setup)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertSameModels(t, workers, want, got)
	}
}

func assertSameModels(t *testing.T, workers int, want, got *ModelSet) {
	t.Helper()
	if w, g := want.KernelCount(), got.KernelCount(); w != g {
		t.Fatalf("workers=%d: %d kernel models, want %d", workers, g, w)
	}
	for metric, byPath := range want.Kernel {
		for path, wm := range byPath {
			gm, ok := got.Kernel[metric][path]
			if !ok {
				t.Fatalf("workers=%d: missing model for %s/%s", workers, metric, path)
			}
			//edlint:ignore floateq the determinism contract is bit-exact equality across worker counts, not tolerance
			if wm.Function.String() != gm.Function.String() || wm.SMAPE != gm.SMAPE || wm.RSS != gm.RSS {
				t.Errorf("workers=%d: %s/%s model differs: %s vs %s", workers, metric, path, wm.Function, gm.Function)
			}
		}
	}
	for path, wm := range want.App {
		gm, ok := got.App[path]
		if !ok {
			t.Fatalf("workers=%d: missing app model %s", workers, path)
		}
		if wm.Function.String() != gm.Function.String() {
			t.Errorf("workers=%d: app %s model differs: %s vs %s", workers, path, wm.Function, gm.Function)
		}
	}
}

// TestBuildModelsUsesModelingOptions ensures the configured search space
// reaches the fit tasks (a reduced space must change the task outcome
// space, not silently fall back to defaults).
func TestBuildModelsUsesModelingOptions(t *testing.T) {
	dir, setup := writeCampaign(t)
	ctx := context.Background()
	p := New(Config{Workers: 2, Modeling: modeling.SmallOptions(), Aggregation: aggregate.DefaultOptions()})
	rep, err := p.Ingest(ctx, dir, "json", ingest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	aggs, err := p.Aggregate(ctx, rep.Profiles)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := p.BuildModels(ctx, aggs, setup)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ms.App[epoch.AppPath]; !ok {
		t.Error("no application model under reduced search space")
	}
}

func TestAnalyzeRequiresAppModel(t *testing.T) {
	dir, setup := writeCampaign(t)
	ctx := context.Background()
	p := New(Config{Workers: 1})
	rep, err := p.Ingest(ctx, dir, "json", ingest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	aggs, err := p.Aggregate(ctx, rep.Profiles)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := p.BuildModels(ctx, aggs, setup)
	if err != nil {
		t.Fatal(err)
	}
	delete(ms.App, epoch.AppPath)
	if _, err := p.Analyze(ctx, ms, aggs, AnalyzeOptions{CoresPerRank: 1}); err == nil {
		t.Error("analyze accepted a model set without an application runtime model")
	}
	var errStage error
	col := &Collector{}
	p2 := New(Config{Observer: col})
	if _, errStage = p2.Analyze(ctx, ms, aggs, AnalyzeOptions{CoresPerRank: 1}); errStage == nil {
		t.Fatal("expected analyze error")
	}
	if last := col.Last(); !errors.Is(last.Err, errStage) {
		t.Errorf("observer saw err %v, want %v", last.Err, errStage)
	}
}
