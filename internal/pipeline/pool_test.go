package pipeline

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 16} {
		const n = 100
		counts := make([]int32, n)
		err := forEach(context.Background(), workers, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := forEach(context.Background(), 4, 0, func(int) error { t.Fatal("task ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachSequentialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := forEach(context.Background(), 1, 10, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(ran) != 4 {
		t.Fatalf("ran %v, want tasks 0..3 only", ran)
	}
}

func TestForEachParallelSurfacesTaskError(t *testing.T) {
	boom := errors.New("boom")
	err := forEach(context.Background(), 4, 50, func(i int) error {
		if i == 20 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestForEachPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := forEach(ctx, 4, 10, func(int) error { t.Error("task ran after cancellation"); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestForEachCancellationStopsPromptly cancels mid-run from inside a task
// and asserts the pool drains without running the full task set, the
// caller sees ctx.Err(), and no worker goroutine leaks.
func TestForEachCancellationStopsPromptly(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, workers := range []int{2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		var executed int32
		const n = 10_000
		err := forEach(ctx, workers, n, func(i int) error {
			if atomic.AddInt32(&executed, 1) == 5 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := atomic.LoadInt32(&executed); got >= n {
			t.Errorf("workers=%d: all %d tasks ran despite cancellation", workers, got)
		}
	}
	assertNoGoroutineLeak(t, before)
}

// assertNoGoroutineLeak polls until the goroutine count returns to (or
// below) the baseline, failing after a deadline. forEach must join all
// workers before returning, so only scheduler lag is tolerated.
func assertNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now, %d at baseline", runtime.NumGoroutine(), baseline)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
