package pipeline

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"

	"extradeep/internal/measurement"
	"extradeep/internal/modeling"
	"extradeep/internal/pmnf"
	"extradeep/internal/resilience"
)

// Checkpoint/resume for the fit stage. Every fit task is keyed by a
// content hash of its complete inputs (metric, callpath, series samples,
// modeling options), so a resumed run reuses a stored result if and only
// if recomputing it would be byte-identical — any input or configuration
// change silently invalidates the record. The campaign key hashes all
// task keys, so the state file itself is per-campaign and two different
// profile sets can share one checkpoint directory.

// ckptModel is the serialized form of one fitted model inside a task
// record, mirroring core's persisted model layout. JSON float64 encoding
// round-trips exactly, so a model decoded from a checkpoint predicts —
// and renders — byte-identically to the freshly fitted one.
type ckptModel struct {
	Function *pmnf.Function `json:"function"`
	SMAPE    float64        `json:"smape"`
	RSS      float64        `json:"rss"`
	// R2 is null for models whose data had no variance (R² undefined).
	R2             *float64            `json:"r2"`
	RelResidualStd float64             `json:"rel_residual_std"`
	Points         []measurement.Point `json:"points"`
	Actual         []float64           `json:"actual"`
}

// encodeModel serializes a fitted model for a checkpoint task record.
func encodeModel(m *modeling.Model) ([]byte, error) {
	cm := ckptModel{
		Function:       m.Function,
		SMAPE:          m.SMAPE,
		RSS:            m.RSS,
		RelResidualStd: m.RelResidualStd,
		Points:         m.Points,
		Actual:         m.Actual,
	}
	if !math.IsNaN(m.R2) {
		r2 := m.R2
		cm.R2 = &r2
	}
	return json.Marshal(cm)
}

// decodeModel is the inverse of encodeModel.
func decodeModel(data []byte) (*modeling.Model, error) {
	var cm ckptModel
	if err := json.Unmarshal(data, &cm); err != nil {
		return nil, fmt.Errorf("pipeline: decoding checkpointed model: %w", err)
	}
	if cm.Function == nil {
		return nil, errors.New("pipeline: checkpointed model without function")
	}
	r2 := math.NaN()
	if cm.R2 != nil {
		r2 = *cm.R2
	}
	return &modeling.Model{
		Function:       cm.Function,
		SMAPE:          cm.SMAPE,
		RSS:            cm.RSS,
		R2:             r2,
		RelResidualStd: cm.RelResidualStd,
		Points:         cm.Points,
		Actual:         cm.Actual,
	}, nil
}

// ckptSeries is the canonical serialization of a fit task's input series
// for key derivation: the measurement points and every repetition value,
// in sample order.
type ckptSeries struct {
	Points []measurement.Point `json:"points"`
	Reps   [][]float64         `json:"reps"`
}

// fitTaskKey derives the content key of one fit task.
func fitTaskKey(t fitTask, opts modeling.Options) (string, error) {
	cs := ckptSeries{}
	for _, sm := range t.series.Samples {
		cs.Points = append(cs.Points, sm.Point)
		cs.Reps = append(cs.Reps, sm.Reps)
	}
	seriesJSON, err := json.Marshal(cs)
	if err != nil {
		return "", fmt.Errorf("pipeline: encoding series for task key: %w", err)
	}
	optsJSON, err := json.Marshal(opts)
	if err != nil {
		return "", fmt.Errorf("pipeline: encoding options for task key: %w", err)
	}
	app := []byte{0}
	if t.app {
		app[0] = 1
	}
	return resilience.Key(
		[]byte("fit/v1"),
		[]byte(t.metric),
		[]byte(t.path),
		app,
		seriesJSON,
		optsJSON,
	), nil
}

// taskName renders the human-readable identity stored in task records.
func (t fitTask) name() string {
	kind := "kernel"
	if t.app {
		kind = "app"
	}
	return fmt.Sprintf("%s %s %s", kind, t.metric, t.path)
}

// ckptPlan is the fit stage's checkpoint context: the per-task keys, the
// campaign key, and the previously completed records keyed for reuse.
type ckptPlan struct {
	store      *resilience.Store
	campaign   string
	keys       []string // task index → content key
	prior      map[string]resilience.TaskRecord
	aggregates []byte
}

// newCkptPlan derives keys for every task and, when resume is set, loads
// any prior state for this campaign. A nil store yields a plan that
// reuses nothing and records nothing.
func newCkptPlan(store *resilience.Store, tasks []fitTask, opts modeling.Options, aggregates []byte, resume bool) (*ckptPlan, error) {
	plan := &ckptPlan{store: store, prior: map[string]resilience.TaskRecord{}}
	if store == nil {
		return plan, nil
	}
	optsJSON, err := json.Marshal(opts)
	if err != nil {
		return nil, fmt.Errorf("pipeline: encoding options for campaign key: %w", err)
	}
	parts := [][]byte{[]byte("campaign/v1"), optsJSON}
	plan.keys = make([]string, len(tasks))
	for i, t := range tasks {
		key, err := fitTaskKey(t, opts)
		if err != nil {
			return nil, err
		}
		plan.keys[i] = key
		parts = append(parts, []byte(key))
	}
	plan.campaign = resilience.Key(parts...)
	if resume {
		if st, ok := resilience.LoadState(plan.store, plan.campaign); ok {
			for _, rec := range st.Tasks {
				plan.prior[rec.Key] = rec
			}
		}
	}
	plan.aggregates = aggregates
	return plan, nil
}

// key returns task i's content key ("" without a store).
func (p *ckptPlan) key(i int) string {
	if p.keys == nil {
		return ""
	}
	return p.keys[i]
}

// reuse returns the prior record for task i, if any.
func (p *ckptPlan) reuse(i int) (resilience.TaskRecord, bool) {
	if p.keys == nil {
		return resilience.TaskRecord{}, false
	}
	rec, ok := p.prior[p.keys[i]]
	return rec, ok
}

// ckptWriter persists campaign state incrementally: every completed task
// appends (or replaces) its record and atomically rewrites the state
// file, so a kill at any instant leaves a loadable prefix of the
// campaign. Safe for concurrent use by the fit worker pool. Write
// failures are deliberately swallowed: checkpointing is an optimization,
// never a reason to fail a run that is otherwise succeeding.
type ckptWriter struct {
	mu    sync.Mutex
	store *resilience.Store
	state *resilience.CampaignState
}

// writer builds the incremental writer for this plan, pre-seeded with
// the reused prior records so a resumed run's state file stays complete.
func (p *ckptPlan) writer() *ckptWriter {
	if p.store == nil {
		return nil
	}
	return &ckptWriter{
		store: p.store,
		state: &resilience.CampaignState{
			Version:    resilience.StateVersion,
			Campaign:   p.campaign,
			Aggregates: p.aggregates,
		},
	}
}

// record persists one completed task. Nil-safe.
func (w *ckptWriter) record(rec resilience.TaskRecord) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.addLocked(rec)
	_ = resilience.SaveState(w.store, w.state)
}

// absorb adds a reused prior record to the in-memory state without
// rewriting the file: reuse implies the on-disk state for this campaign
// already contains the record, so a kill at any instant still leaves a
// complete state, and a pure resume costs zero writes. The next record()
// persists the absorbed records along with the fresh one.
func (w *ckptWriter) absorb(rec resilience.TaskRecord) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.addLocked(rec)
}

// addLocked appends or replaces rec in the in-memory task list.
func (w *ckptWriter) addLocked(rec resilience.TaskRecord) {
	for i := range w.state.Tasks {
		if w.state.Tasks[i].Key == rec.Key {
			w.state.Tasks[i] = rec
			return
		}
	}
	w.state.Tasks = append(w.state.Tasks, rec)
}
