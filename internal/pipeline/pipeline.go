// Package pipeline is the staged analysis core of Extra-Deep: it models
// the end-to-end run of Fig. 2 and Section 3 as typed stages
//
//	Ingest → Aggregate → EpochExtrapolate → Fit → Analyze → Report
//
// sharing one context.Context, with per-stage timing and counters exposed
// through an observer hook and a bounded worker pool that fans the
// per-kernel PMNF hypothesis search out across goroutines (one task per
// kernel × metric).
//
// Determinism guarantee: for identical inputs, a pipeline run with any
// worker count produces output byte-identical to the sequential run.
// Every fit task is a pure function of its series; tasks are enumerated
// in sorted (metric, callpath) order, results land in pre-sized slots
// indexed by task, and all reductions iterate in that fixed order — no
// scheduling-dependent tie-break can reach the output.
package pipeline

import (
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"extradeep/internal/aggregate"
	"extradeep/internal/modeling"
	"extradeep/internal/resilience"
)

// Stage names one phase of the analysis pipeline. The constants below are
// the built-in stages; embedders (e.g. edbench) may observe ad-hoc stages
// under their own names.
type Stage string

// The built-in pipeline stages, in execution order.
const (
	// StageIngest loads and gates the profile set (fault-tolerant, see
	// internal/ingest).
	StageIngest Stage = "ingest"
	// StageAggregate runs the Fig. 2 preprocessing per configuration.
	StageAggregate Stage = "aggregate"
	// StageEpoch extrapolates sampled step measurements to full epochs
	// (Eqs. 2–4) and assembles the kernel/application experiments.
	StageEpoch Stage = "epoch"
	// StageFit searches the PMNF hypothesis space per kernel × metric
	// (Eq. 5) — the hot path the worker pool parallelizes.
	StageFit Stage = "fit"
	// StageAnalyze derives scalability, efficiency, cost and bottleneck
	// results from the fitted models (Section 3).
	StageAnalyze Stage = "analyze"
	// StageReport renders the analysis into the text report.
	StageReport Stage = "report"
)

// Counters carries per-stage item counts, e.g. profiles loaded, fit tasks
// executed, models kept or skipped.
type Counters map[string]int

// StageStats summarizes one completed (or failed) stage execution.
type StageStats struct {
	// Stage identifies the stage.
	Stage Stage
	// Duration is the stage's wall-clock time.
	Duration time.Duration
	// Counters holds the stage's item counts (nil when it has none).
	Counters Counters
	// Err is the error the stage returned, nil on success.
	Err error
}

// Observer receives stage lifecycle events. Implementations must be safe
// for use from a single goroutine (the pipeline serializes all calls);
// StageStart is always followed by exactly one StageDone for that stage
// invocation, in nesting order.
type Observer interface {
	// StageStart fires before the stage body runs.
	StageStart(Stage)
	// StageDone fires after the stage body returned, with its stats.
	StageDone(StageStats)
}

// nopObserver discards all events; it backs a nil Config.Observer.
type nopObserver struct{}

func (nopObserver) StageStart(Stage)     {}
func (nopObserver) StageDone(StageStats) {}

// LogObserver writes one line per completed stage to an io.Writer — the
// CLI's -timings view. Failed writes are deliberately discarded (a CLI
// diagnostic stream has no recovery path).
type LogObserver struct {
	W io.Writer
}

// StageStart implements Observer.
func (o *LogObserver) StageStart(Stage) {}

// StageDone implements Observer.
func (o *LogObserver) StageDone(s StageStats) {
	if o.W == nil {
		return
	}
	_, _ = io.WriteString(o.W, "stage "+string(s.Stage)+": "+s.Duration.Round(time.Microsecond).String())
	for _, k := range sortedCounterKeys(s.Counters) {
		_, _ = io.WriteString(o.W, "  "+k+"="+strconv.Itoa(s.Counters[k]))
	}
	if s.Err != nil {
		_, _ = io.WriteString(o.W, "  error="+s.Err.Error())
	}
	_, _ = io.WriteString(o.W, "\n")
}

// Collector records every stage event, for tests and embedders that want
// the timings after the fact. It is safe for concurrent use.
type Collector struct {
	mu    sync.Mutex
	stats []StageStats
}

// StageStart implements Observer.
func (c *Collector) StageStart(Stage) {}

// StageDone implements Observer.
func (c *Collector) StageDone(s StageStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = append(c.stats, s)
}

// Stats returns a copy of the recorded stage stats in completion order.
func (c *Collector) Stats() []StageStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]StageStats(nil), c.stats...)
}

// Last returns the most recently completed stage's stats (zero value when
// nothing completed yet).
func (c *Collector) Last() StageStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.stats) == 0 {
		return StageStats{}
	}
	return c.stats[len(c.stats)-1]
}

// Observe runs fn as one observed stage: StageStart, the body, StageDone
// with duration, counters and error. It is exported so embedders (edbench)
// can time their own ad-hoc stages with the same contract the built-in
// stages use. A nil observer is allowed.
func Observe(obs Observer, s Stage, fn func() (Counters, error)) error {
	if obs == nil {
		obs = nopObserver{}
	}
	obs.StageStart(s)
	//edlint:ignore wallclock observer layer: stage durations are diagnostics on stderr, never model inputs
	start := time.Now()
	counters, err := fn()
	//edlint:ignore wallclock observer layer: the duration feeds StageDone telemetry only
	obs.StageDone(StageStats{Stage: s, Duration: time.Since(start), Counters: counters, Err: err})
	return err
}

// Config assembles a pipeline.
type Config struct {
	// Workers bounds the fit worker pool: 1 runs strictly sequentially
	// (the -j 1 mode), N > 1 uses at most N goroutines, and 0 defaults to
	// runtime.GOMAXPROCS(0). Output is byte-identical for every value.
	Workers int
	// Aggregation configures the Fig. 2 preprocessing.
	Aggregation aggregate.Options
	// Modeling configures the PMNF hypothesis search.
	Modeling modeling.Options
	// MinConfigurations is the kernel-filtering threshold (step (4) of
	// Fig. 2); 0 means the paper's 5.
	MinConfigurations int
	// Observer receives stage timing/counter events; nil discards them.
	Observer Observer

	// Injector fires scheduled runtime faults at stage and fit-task
	// injection points; nil (the production default) reduces the hook to
	// a context check.
	Injector *resilience.Injector
	// Retry is the per-stage retry/backoff policy for retryable-class
	// failures; the zero value uses the resilience defaults (3 attempts).
	// Only retryable errors — blown stage budgets and injected transient
	// faults — are ever retried.
	Retry resilience.RetryPolicy
	// StageTimeout is the deadline budget applied to every stage attempt;
	// 0 disables stage deadlines.
	StageTimeout time.Duration
	// Clock paces retries, deadlines and injected stalls; nil means the
	// wall clock. Tests substitute a resilience.FakeClock for
	// deterministic schedules.
	Clock resilience.Clock
	// Checkpoint enables incremental campaign checkpointing of the fit
	// stage into this store; nil disables it.
	Checkpoint *resilience.Store
	// Resume reuses prior completed task records from Checkpoint. Reuse is
	// content-keyed — any change to the inputs or modeling options
	// invalidates the records — so a resumed run over identical inputs is
	// byte-identical to an uninterrupted one. Without Resume the store is
	// still written, but prior state is ignored (a fresh campaign).
	Resume bool
}

// Pipeline drives the staged analysis. The zero value is not usable; use
// New.
type Pipeline struct {
	cfg Config
	obs Observer
}

// New returns a pipeline over the given configuration, substituting
// defaults for zero-valued aggregation/modeling options.
func New(cfg Config) *Pipeline {
	if cfg.Observer == nil {
		cfg.Observer = nopObserver{}
	}
	if cfg.Modeling.Unset() {
		cfg.Modeling = modeling.DefaultOptions()
	}
	return &Pipeline{cfg: cfg, obs: cfg.Observer}
}

// Workers resolves the configured worker bound to a concrete count ≥ 1.
func (p *Pipeline) Workers() int { return resolveWorkers(p.cfg.Workers) }

func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// observe runs fn as a built-in stage of this pipeline.
func (p *Pipeline) observe(s Stage, fn func() (Counters, error)) error {
	return Observe(p.obs, s, fn)
}

// sortedCounterKeys returns counter keys in stable order.
func sortedCounterKeys(c Counters) []string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
