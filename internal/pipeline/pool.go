package pipeline

import (
	"context"
	"sync"
)

// forEach runs fn(0..n-1) with at most `workers` goroutines and returns
// the first error in task order.
//
// Determinism contract: with workers == 1 the tasks run strictly
// sequentially on the calling goroutine. With workers > 1 the tasks may
// run in any order, so fn must write its result into a slot indexed by i
// and must not depend on, or mutate, state shared with other tasks. On
// success the set of executed tasks is always exactly {0..n-1}, so any
// reduction over the index-addressed results is order-independent.
//
// Cancellation contract: when ctx is cancelled, no new task starts, the
// pool drains promptly, all worker goroutines exit before forEach
// returns, and ctx.Err() is returned. When a task returns an error, the
// remaining tasks are cancelled and the error with the smallest task
// index among the tasks that ran is returned.
func forEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	workers = resolveWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	poolCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	tasks := make(chan int)
	errs := make([]error, n) // one slot per task: no locking, no ordering races
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				if poolCtx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case tasks <- i:
		case <-poolCtx.Done():
			break feed
		}
	}
	close(tasks)
	wg.Wait()

	// The enclosing context's cancellation outranks task errors: a caller
	// that cancelled mid-run must see its own ctx.Err(), not whichever
	// task happened to fail while draining.
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
