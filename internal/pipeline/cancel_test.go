package pipeline

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"extradeep/internal/ingest"
)

// cancelOnStage is an Observer that cancels a context the moment a given
// stage starts, simulating a caller abandoning the run mid-pipeline.
type cancelOnStage struct {
	stage  Stage
	cancel context.CancelFunc
}

func (c *cancelOnStage) StageStart(s Stage) {
	if s == c.stage {
		c.cancel()
	}
}

func (c *cancelOnStage) StageDone(StageStats) {}

// TestBuildModelsCancellationStopsFitPool cancels the context as the fit
// stage begins: the worker pool must drain promptly, BuildModels must
// surface ctx.Err(), and every worker goroutine must be joined.
func TestBuildModelsCancellationStopsFitPool(t *testing.T) {
	dir, setup := writeCampaign(t)
	prep := New(Config{Workers: 1})
	bg := context.Background()
	rep, err := prep.Ingest(bg, dir, "json", ingest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	aggs, err := prep.Aggregate(bg, rep.Profiles)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	obs := &cancelOnStage{stage: StageFit, cancel: cancel}
	p := New(Config{Workers: 8, Observer: obs})
	models, err := p.BuildModels(ctx, aggs, setup)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if models != nil {
		t.Error("cancelled BuildModels returned a model set")
	}
	assertNoGoroutineLeak(t, before)
}

// TestRunCancellationBeforeStart: a pre-cancelled context must stop the
// pipeline at the first stage boundary without touching the filesystem
// results.
func TestRunCancellationBeforeStart(t *testing.T) {
	dir, setup := writeCampaign(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New(Config{Workers: 4})
	_, err := p.Run(ctx, testSpec(dir, setup))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
