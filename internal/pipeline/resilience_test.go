package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"extradeep/internal/propcheck"
	"extradeep/internal/resilience"
)

// resilientConfig returns a pipeline config with deterministic resilience
// wiring: fake clock, tight stage budgets, seeded retry policy.
func resilientConfig(workers int, clock resilience.Clock, inj *resilience.Injector) Config {
	return Config{
		Workers:      workers,
		Injector:     inj,
		Clock:        clock,
		StageTimeout: time.Second,
		Retry:        resilience.RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, Seed: 1},
	}
}

// TestFitPanicQuarantinesKernel is the acceptance pin for graceful
// degradation: an injected per-kernel fit panic yields a completed run,
// a partial model set, a report that names the quarantined kernel with
// its failure class, and no goroutine leaks.
func TestFitPanicQuarantinesKernel(t *testing.T) {
	dir, setup := writeCampaign(t)
	before := runtime.NumGoroutine()

	clock := resilience.NewFakeClock()
	inj := resilience.NewInjector(clock,
		resilience.Fault{Point: "fit:task:0", Kind: resilience.KindPanic},
		resilience.Fault{Point: "fit:task:2", Kind: resilience.KindError, Class: resilience.ClassDegraded},
	)
	p := New(resilientConfig(8, clock, inj))
	res, err := p.Run(context.Background(), testSpec(dir, setup))
	if err != nil {
		t.Fatalf("degraded run failed outright: %v", err)
	}
	if !res.Degraded() {
		t.Fatal("run with quarantined fits not marked degraded")
	}

	var panicked, degraded *FitFailure
	for i := range res.Models.Skipped {
		f := &res.Models.Skipped[i]
		switch f.Class {
		case FailurePanic:
			panicked = f
		case FailureDegraded:
			degraded = f
		case FailureUnmodelable:
		default:
			t.Fatalf("unclassified fit failure %+v", f)
		}
	}
	if panicked == nil || degraded == nil {
		t.Fatalf("missing quarantine records: %+v", res.Models.Skipped)
	}
	for _, want := range []string{
		"quarantined kernels (run completed partially):",
		panicked.Callpath, degraded.Callpath,
		"class=panic", "class=degraded",
	} {
		if !strings.Contains(res.Report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	assertNoGoroutineLeak(t, before)
}

// TestStageStallRetriesByteIdentical: a stall blowing the stage budget is
// classified retryable, the stage is re-run, and the final report is
// byte-identical to an undisturbed run — retries cannot leak into output.
func TestStageStallRetriesByteIdentical(t *testing.T) {
	dir, setup := writeCampaign(t)
	cold, err := New(Config{Workers: 4}).Run(context.Background(), testSpec(dir, setup))
	if err != nil {
		t.Fatal(err)
	}

	clock := resilience.NewFakeClock()
	inj := resilience.NewInjector(clock,
		resilience.Fault{Point: "aggregate", Hit: 0, Kind: resilience.KindStall, Stall: time.Hour})
	col := &Collector{}
	cfg := resilientConfig(4, clock, inj)
	cfg.Observer = col
	res, err := New(cfg).Run(context.Background(), testSpec(dir, setup))
	if err != nil {
		t.Fatalf("stalled run failed after retries: %v", err)
	}
	if res.Report != cold.Report {
		t.Error("retried run's report differs from the undisturbed run")
	}
	attempts := 0
	for _, s := range col.Stats() {
		if s.Stage == StageAggregate {
			attempts++
			if attempts == 1 && !resilience.IsRetryable(s.Err) {
				t.Errorf("first aggregate attempt error = %v, want retryable deadline", s.Err)
			}
		}
	}
	if attempts != 2 {
		t.Errorf("aggregate ran %d times, want 2 (fail + retry)", attempts)
	}
}

// TestStageFatalInjectionFailsTyped: a fatal-class injected stage error
// aborts the run with the typed error intact.
func TestStageFatalInjectionFailsTyped(t *testing.T) {
	dir, setup := writeCampaign(t)
	clock := resilience.NewFakeClock()
	inj := resilience.NewInjector(clock,
		resilience.Fault{Point: "epoch", Kind: resilience.KindError, Class: resilience.ClassFatal})
	_, err := New(resilientConfig(4, clock, inj)).Run(context.Background(), testSpec(dir, setup))
	var typed *resilience.Error
	if !errors.As(err, &typed) || typed.Class != resilience.ClassFatal || typed.Stage != "epoch" {
		t.Fatalf("err = %v, want fatal typed error at epoch", err)
	}
}

// TestCancelFaultKillsRun: a cancel-kind fault at a fit task behaves
// exactly like the caller cancelling at that instant.
func TestCancelFaultKillsRun(t *testing.T) {
	dir, setup := writeCampaign(t)
	before := runtime.NumGoroutine()
	clock := resilience.NewFakeClock()
	inj := resilience.NewInjector(clock,
		resilience.Fault{Point: "fit:task:3", Kind: resilience.KindCancel})
	_, err := New(resilientConfig(8, clock, inj)).Run(context.Background(), testSpec(dir, setup))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	assertNoGoroutineLeak(t, before)
}

// TestCheckpointResumeAfterKillMidFit is the acceptance pin for
// checkpoint/resume: a fault schedule that kills the run mid-Fit,
// followed by a resumed run over the same checkpoint directory, produces
// byte-identical report output to the same campaign run uninterrupted.
func TestCheckpointResumeAfterKillMidFit(t *testing.T) {
	dir, setup := writeCampaign(t)
	cold, err := New(Config{Workers: 4}).Run(context.Background(), testSpec(dir, setup))
	if err != nil {
		t.Fatal(err)
	}

	store := &resilience.Store{Dir: t.TempDir()}
	clock := resilience.NewFakeClock()
	inj := resilience.NewInjector(clock,
		resilience.Fault{Point: "fit:task:4", Kind: resilience.KindError, Class: resilience.ClassFatal})
	cfg := resilientConfig(1, clock, inj) // sequential: tasks 0–3 checkpoint before the kill
	cfg.Checkpoint = store
	if _, err := New(cfg).Run(context.Background(), testSpec(dir, setup)); err == nil {
		t.Fatal("killed run succeeded")
	}

	col := &Collector{}
	resumed, err := New(Config{Workers: 4, Checkpoint: store, Resume: true, Observer: col}).Run(context.Background(), testSpec(dir, setup))
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if resumed.Report != cold.Report {
		t.Error("resumed report differs from uninterrupted run")
	}
	reused := 0
	for _, s := range col.Stats() {
		if s.Stage == StageFit {
			reused = s.Counters["reused"]
		}
	}
	if reused < 4 {
		t.Errorf("resume reused %d task records, want ≥ 4", reused)
	}
}

// TestCheckpointInvalidatedByOptionChange: the campaign key hashes the
// modeling options, so a configuration change can never reuse stale
// records.
func TestCheckpointInvalidatedByOptionChange(t *testing.T) {
	dir, setup := writeCampaign(t)
	store := &resilience.Store{Dir: t.TempDir()}
	if _, err := New(Config{Workers: 4, Checkpoint: store}).Run(context.Background(), testSpec(dir, setup)); err != nil {
		t.Fatal(err)
	}
	col := &Collector{}
	cfg := Config{Workers: 4, Checkpoint: store, Resume: true, Observer: col}
	cfg.Modeling.MaxTerms = 2 // non-default hypothesis space
	if _, err := New(cfg).Run(context.Background(), testSpec(dir, setup)); err != nil {
		t.Fatal(err)
	}
	for _, s := range col.Stats() {
		if s.Stage == StageFit && s.Counters["reused"] != 0 {
			t.Fatalf("changed options reused %d records", s.Counters["reused"])
		}
	}
}

// TestPropFaultScheduleTrichotomy drives randomized fault schedules
// end-to-end and asserts the resilience layer's core invariant: every
// run either completes fully, completes partially with every failure
// classified (and named in the report), or fails with a typed error —
// never a hang, an unclassified partial, or a panic escaping Run.
func TestPropFaultScheduleTrichotomy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline property; skipped in -short")
	}
	dir, setup := writeCampaign(t)
	points := InjectionPoints(40)
	before := runtime.NumGoroutine()

	propcheck.CheckConfig(t, propcheck.Config{Iterations: 30},
		propcheck.Gen[int64]{
			Generate: func(r *propcheck.Rand) int64 { return r.Int64Range(0, 1<<40) },
			Describe: func(seed int64) string {
				return fmt.Sprintf("EDFAULT_SEED=%d schedule=%q", seed,
					resilience.FormatSchedule(resilience.ScheduleFromSeed(seed, points, 4)))
			},
		},
		func(seed int64) error {
			clock := resilience.NewFakeClock()
			sched := resilience.ScheduleFromSeed(seed, points, 4)
			inj := resilience.NewInjector(clock, sched...)
			p := New(resilientConfig(4, clock, inj))
			res, err := p.Run(context.Background(), testSpec(dir, setup))
			if err != nil {
				// Outcome 3: typed failure. Anything else is a bug.
				var typed *resilience.Error
				if errors.As(err, &typed) || errors.Is(err, context.Canceled) ||
					errors.Is(err, context.DeadlineExceeded) {
					return nil
				}
				// Historical sentinel errors (e.g. no application model
				// after quarantining the app fit) are typed enough: they
				// classify as fatal.
				if resilience.ClassOf(err) == resilience.ClassFatal {
					return nil
				}
				return fmt.Errorf("untyped failure: %w", err)
			}
			if res.Report == "" {
				return errors.New("completed run produced no report")
			}
			for _, f := range res.Models.Skipped {
				switch f.Class {
				case FailurePanic, FailureDegraded:
					if !strings.Contains(res.Report, f.Callpath) {
						return fmt.Errorf("report does not name quarantined kernel %s", f.Callpath)
					}
				case FailureUnmodelable:
				default:
					return fmt.Errorf("unclassified failure %+v", f)
				}
			}
			if res.Degraded() && !strings.Contains(res.Report, "quarantined kernels") {
				return errors.New("partial run's report has no quarantine section")
			}
			return nil
		})
	assertNoGoroutineLeak(t, before)
}

// TestPropResumeByteIdentical: interrupt the fit stage at an arbitrary
// task with a fatal fault, then resume from the checkpoint — the final
// report must be byte-identical to the uninterrupted run, for every
// interruption point.
func TestPropResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline property; skipped in -short")
	}
	dir, setup := writeCampaign(t)
	cold, err := New(Config{Workers: 4}).Run(context.Background(), testSpec(dir, setup))
	if err != nil {
		t.Fatal(err)
	}
	// Total fit tasks = fitted kernel models + app models + recorded
	// skips, so the generated interruption point always lands on a task.
	nTasks := cold.Models.KernelCount() + len(cold.Models.App) + len(cold.Models.Skipped)

	propcheck.CheckConfig(t, propcheck.Config{Iterations: 10},
		propcheck.IntRange(0, nTasks-1),
		func(task int) error {
			store := &resilience.Store{Dir: t.TempDir()}
			clock := resilience.NewFakeClock()
			inj := resilience.NewInjector(clock, resilience.Fault{
				Point: fmt.Sprintf("fit:task:%d", task),
				Kind:  resilience.KindError, Class: resilience.ClassFatal,
			})
			cfg := resilientConfig(4, clock, inj)
			cfg.Checkpoint = store
			_, ierr := New(cfg).Run(context.Background(), testSpec(dir, setup))
			if ierr == nil {
				return fmt.Errorf("fault at task %d did not interrupt the run", task)
			}
			resumed, rerr := New(Config{Workers: 4, Checkpoint: store, Resume: true}).Run(context.Background(), testSpec(dir, setup))
			if rerr != nil {
				return fmt.Errorf("resume after kill at task %d: %w", task, rerr)
			}
			if !bytes.Equal([]byte(resumed.Report), []byte(cold.Report)) {
				return fmt.Errorf("resume after kill at task %d diverged from cold run", task)
			}
			return nil
		})
}
