package pipeline

import (
	"context"
	"fmt"
	"strings"

	"extradeep/internal/epoch"
)

// Render is the Report stage: it turns an AnalysisResult into the text
// report the extradeep CLI prints. The output depends only on the result
// values, never on timing or scheduling — this is where the pipeline's
// byte-identical determinism guarantee is observable.
func (p *Pipeline) Render(res *AnalysisResult) string {
	var b strings.Builder
	_ = p.observe(StageReport, func() (Counters, error) {
		renderAnalysis(&b, res)
		return Counters{"bytes": b.Len()}, nil
	})
	return b.String()
}

// renderAnalysis writes the report sections in their fixed order:
// application models, bottleneck ranking, least-benefit ranking, optional
// prediction, scalability/cost table, cost-effectiveness.
func renderAnalysis(b *strings.Builder, res *AnalysisResult) {
	fmt.Fprintf(b, "\napplication models (training time per epoch):\n")
	for _, path := range []string{epoch.AppPath, epoch.CompPath, epoch.CommPath, epoch.MemPath} {
		if m, ok := res.Models.App[path]; ok {
			fmt.Fprintf(b, "  %-20s T(p) = %s   (CV-SMAPE %.2f%%, R² %.4f)\n", path, m.Function, m.SMAPE, m.R2)
		}
	}

	fmt.Fprintf(b, "\ntop %d kernels by growth trend (%s -> %s):\n", res.TopKernels, res.Baseline.Key(), res.MaxPoint.Key())
	for i, k := range res.RankedGrowth {
		if i >= res.TopKernels {
			break
		}
		fmt.Fprintf(b, "  %2d. %-55s ×%-8.2f %s  %s\n", i+1, k.Callpath, k.GrowthFactor, k.Growth, k.Model.Function)
	}

	// Kernels ranked by achieved speedup: which functions benefit least
	// from scaling up (Section 3.1)?
	if n := len(res.RankedSpeedup); n > 0 {
		fmt.Fprintf(b, "\nkernels benefiting least from scaling up (Δ %s -> %s):\n", res.Baseline.Key(), res.MaxPoint.Key())
		shown := 0
		for i := n - 1; i >= 0 && shown < 5; i-- {
			k := res.RankedSpeedup[i]
			fmt.Fprintf(b, "  %-55s Δ = %+.1f%%\n", k.Callpath, k.SpeedupPct)
			shown++
		}
	}

	if res.Prediction.HasValue {
		fmt.Fprintf(b, "\npredicted training time per epoch @ %.0f ranks: %.2f s (95%% CI [%.2f, %.2f])\n",
			res.Prediction.Ranks, res.Prediction.Value, res.Prediction.Lo, res.Prediction.Hi)
	}

	fmt.Fprintf(b, "\nscalability and cost per measured configuration:\n")
	fmt.Fprintf(b, "  %6s  %12s  %12s  %12s\n", "ranks", "T(p) [s]", "efficiency", "cost [core-h]")
	for _, row := range res.Rows {
		fmt.Fprintf(b, "  %6.0f  %12.2f  %12.3f  %12.3f\n", row.Ranks, row.Time, row.Efficiency, row.Cost)
	}

	if res.CostEffectiveErr != nil {
		fmt.Fprintf(b, "\ncost-effectiveness: %v\n", res.CostEffectiveErr)
	} else {
		best := res.CostEffective
		fmt.Fprintf(b, "\nmost cost-effective configuration: %.0f ranks (T = %.2f s, cost = %.3f core-h, efficiency %.3f)\n",
			best.Ranks, best.Time, best.Cost, best.Efficiency)
	}

	renderQuarantine(b, res.Models)
}

// renderQuarantine names every quarantined kernel with its failure
// class. It renders nothing for fully successful runs — including runs
// that only skipped unmodelable series, the historical silent skip — so
// existing report outputs are byte-identical.
func renderQuarantine(b *strings.Builder, ms *ModelSet) {
	if ms == nil || !ms.Degraded() {
		return
	}
	fmt.Fprintf(b, "\nquarantined kernels (run completed partially):\n")
	for _, f := range ms.Skipped {
		if f.Class == FailureUnmodelable {
			continue
		}
		kind := "kernel"
		if f.App {
			kind = "app"
		}
		fmt.Fprintf(b, "  %-6s %-8s %-55s class=%-8s %s\n", kind, f.Metric, f.Callpath, f.Class, f.Reason)
	}
}

// RenderContext is the Report stage under the resilience policy
// (injection point "report", deadline budget, retry): like Render, but a
// full run — or the CLI — can inject faults at every stage boundary.
func (p *Pipeline) RenderContext(ctx context.Context, res *AnalysisResult) (string, error) {
	var b strings.Builder
	err := p.runStage(ctx, StageReport, func(sctx context.Context) (Counters, error) {
		b.Reset() // a retried attempt must not concatenate onto the last
		renderAnalysis(&b, res)
		return Counters{"bytes": b.Len()}, nil
	})
	if err != nil {
		return "", err
	}
	return b.String(), nil
}
