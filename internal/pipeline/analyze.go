package pipeline

import (
	"context"
	"errors"
	"sort"

	"extradeep/internal/aggregate"
	"extradeep/internal/analysis"
	"extradeep/internal/epoch"
	"extradeep/internal/measurement"
	"extradeep/internal/modeling"
)

// AnalyzeOptions configures the Analyze stage — the Section 3 questions
// asked of the fitted models.
type AnalyzeOptions struct {
	// Predict, when > 0, additionally predicts the training time per
	// epoch at this rank count (Q1).
	Predict float64
	// Budget bounds the cost-effectiveness search in core-hours
	// (0 = unbounded).
	Budget float64
	// MaxTime bounds the acceptable training time per epoch in seconds
	// (0 = unbounded).
	MaxTime float64
	// CoresPerRank is the ϱ of the cost model (from the measured system).
	CoresPerRank float64
	// TopKernels is the length of the bottleneck ranking shown in the
	// report; 0 means 10.
	TopKernels int
}

// Prediction is one Q1 answer: the predicted value with its confidence
// interval.
type Prediction struct {
	Ranks    float64
	Value    float64
	Lo, Hi   float64
	CILevel  float64
	HasValue bool
}

// ConfigRow is one line of the scalability-and-cost table: a measured
// configuration with its modeled time, efficiency and cost.
type ConfigRow struct {
	Ranks      float64
	Time       float64
	Efficiency float64
	Cost       float64
}

// AnalysisResult carries everything the Analyze stage derives; Render
// turns it into the text report.
type AnalysisResult struct {
	// Models are the fitted models the analysis ran on.
	Models *ModelSet
	// AppModel is the application runtime model (epoch.AppPath).
	AppModel *modeling.Model
	// Baseline and MaxPoint span the measured range the rankings cover.
	Baseline, MaxPoint measurement.Point
	// RankedGrowth is the bottleneck ranking (Section 3.1).
	RankedGrowth []analysis.RankedKernel
	// RankedSpeedup orders kernels by achieved speedup (Eq. 11).
	RankedSpeedup []analysis.SpeedupRankedKernel
	// Prediction is the optional Q1 extrapolation.
	Prediction Prediction
	// Rows is the per-configuration scalability and cost table.
	Rows []ConfigRow
	// CostEffective is the Q5 answer; CostEffectiveErr is set instead
	// when no configuration meets the constraints (a reportable outcome,
	// not a pipeline failure).
	CostEffective    analysis.Feasibility
	CostEffectiveErr error
	// TopKernels is the ranking length the report shows.
	TopKernels int
}

// Analyze derives scalability, efficiency, cost and bottleneck results
// (Section 3, Q1–Q5) from the fitted models over the measured
// configurations.
func (p *Pipeline) Analyze(ctx context.Context, models *ModelSet, aggs []*aggregate.ConfigAggregate, opts AnalyzeOptions) (*AnalysisResult, error) {
	res := &AnalysisResult{Models: models, TopKernels: opts.TopKernels}
	if res.TopKernels <= 0 {
		res.TopKernels = 10
	}
	err := p.runStage(ctx, StageAnalyze, func(sctx context.Context) (Counters, error) {
		if len(aggs) == 0 {
			return nil, errors.New("pipeline: no aggregated configurations to analyze")
		}
		appModel, ok := models.App[epoch.AppPath]
		if !ok {
			return nil, errors.New("pipeline: no application runtime model")
		}
		res.AppModel = appModel
		res.Baseline = aggs[0].Point.Clone()
		res.MaxPoint = aggs[len(aggs)-1].Point.Clone()

		timeModels := models.Kernel[measurement.MetricTime]
		res.RankedGrowth = analysis.RankByGrowth(timeModels, res.Baseline, res.MaxPoint)
		res.RankedSpeedup = analysis.RankBySpeedup(timeModels, res.Baseline, res.MaxPoint)

		if opts.Predict > 0 {
			lo, hi := appModel.PredictInterval(0.95, opts.Predict)
			res.Prediction = Prediction{
				Ranks:    opts.Predict,
				Value:    appModel.Predict(opts.Predict),
				Lo:       lo,
				Hi:       hi,
				CILevel:  0.95,
				HasValue: true,
			}
		}

		var xs []float64
		for _, agg := range aggs {
			xs = append(xs, agg.Point[0])
		}
		sort.Float64s(xs)
		effs, err := analysis.Efficiencies(appModel.Function, xs)
		if err != nil {
			return nil, err
		}
		cm := analysis.CostModel{Runtime: appModel.Function, CoresPerRank: opts.CoresPerRank}
		res.Rows = make([]ConfigRow, len(xs))
		for i, x := range xs {
			res.Rows[i] = ConfigRow{
				Ranks:      x,
				Time:       appModel.Predict(x),
				Efficiency: effs[i],
				Cost:       cm.CoreHours(x),
			}
		}

		best, err := analysis.MostCostEffective(appModel.Function, cm, xs, analysis.Constraint{MaxTime: opts.MaxTime, Budget: opts.Budget})
		if err != nil {
			res.CostEffectiveErr = err
		} else {
			res.CostEffective = best
		}
		return Counters{"kernels_ranked": len(res.RankedGrowth), "configurations": len(res.Rows)}, nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
