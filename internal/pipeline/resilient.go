package pipeline

import (
	"context"
	"errors"
	"fmt"

	"extradeep/internal/resilience"
)

// clock resolves the configured resilience clock (wall clock by default).
func (p *Pipeline) clock() resilience.Clock {
	if p.cfg.Clock == nil {
		return resilience.WallClock{}
	}
	return p.cfg.Clock
}

// runStage executes one pipeline stage under the resilience policy:
// every attempt is its own observed stage invocation wrapped in the
// injector hook, an optional per-stage deadline budget, and panic
// recovery; the seeded retrier re-runs attempts that fail with the
// retryable class. With a zero-valued resilience configuration this
// reduces to the historical fail-fast observe path (the retrier never
// sees a retryable error and the injector hook is a context check).
func (p *Pipeline) runStage(ctx context.Context, s Stage, fn func(ctx context.Context) (Counters, error)) error {
	r := &resilience.Retrier{Policy: p.cfg.Retry, Clock: p.clock()}
	return r.Do(ctx, string(s), func(actx context.Context) error {
		return p.observe(s, func() (Counters, error) {
			return p.stageAttempt(actx, s, fn)
		})
	})
}

// stageAttempt runs one attempt of a stage body: it derives the stage's
// deadline context, fires the stage-entry injection point, recovers
// panics into typed fatal errors, and classifies a blown stage budget as
// retryable (unless the caller's own context ended, which stays fatal —
// the caller asked the run to stop).
func (p *Pipeline) stageAttempt(ctx context.Context, s Stage, fn func(ctx context.Context) (Counters, error)) (counters Counters, err error) {
	sctx := ctx
	cancel := context.CancelFunc(func() {})
	if p.cfg.StageTimeout > 0 {
		sctx, cancel = p.clock().WithTimeout(ctx, p.cfg.StageTimeout)
	}
	defer func() {
		if r := recover(); r != nil {
			counters, err = nil, resilience.Errorf(resilience.ClassFatal, string(s), "stage panicked: %v", r)
		}
		deadline := err != nil && ctx.Err() == nil && sctx.Err() != nil &&
			errors.Is(context.Cause(sctx), context.DeadlineExceeded)
		cancel()
		if deadline {
			err = resilience.Wrap(resilience.ClassRetryable, string(s),
				fmt.Errorf("stage deadline exceeded after %v: %w", p.cfg.StageTimeout, context.DeadlineExceeded))
		}
	}()
	if ierr := p.cfg.Injector.At(sctx, string(s)); ierr != nil {
		return nil, ierr
	}
	return fn(sctx)
}

// Fit-failure classes recorded in ModelSet.Skipped and checkpoint task
// records.
const (
	// FailurePanic marks a per-kernel fit that panicked and was
	// quarantined; the run completed partially.
	FailurePanic = "panic"
	// FailureDegraded marks a per-kernel fit that failed with the
	// degraded class (injected or wrapped); the run completed partially.
	FailureDegraded = "degraded"
	// FailureUnmodelable marks a series the hypothesis search rejects
	// (degenerate data). This is the historical silent skip: it does NOT
	// make the run partial.
	FailureUnmodelable = "unmodelable"
)

// FitFailure names one per-kernel fit that produced no model, with its
// failure class — the report's quarantine section and the partial-success
// exit code are derived from these.
type FitFailure struct {
	// Metric and Callpath identify the series.
	Metric string
	// Callpath is the kernel callpath (or the synthetic application path).
	Callpath string
	// App marks application-level series.
	App bool
	// Class is one of FailurePanic, FailureDegraded, FailureUnmodelable.
	Class string
	// Reason is the failure detail.
	Reason string
}

// Degraded reports whether any fit failure quarantined a kernel (panic or
// degraded class). Unmodelable series are the historical silent skip and
// do not count: a run that only skips degenerate series is a full
// success, exactly as before the resilience layer existed.
func (m *ModelSet) Degraded() bool {
	for _, f := range m.Skipped {
		if f.Class != FailureUnmodelable {
			return true
		}
	}
	return false
}

// fitTaskPoint names the injection point of fit task i, in sorted task
// order — "fit:task:3" is the fourth (metric, callpath) series.
func fitTaskPoint(i int) string { return fmt.Sprintf("fit:task:%d", i) }

// InjectionPoints returns every injection-point name a full pipeline run
// with n fit tasks exposes, for seed-derived schedules (EDFAULT_SEED).
func InjectionPoints(fitTasks int) []string {
	pts := []string{
		string(StageIngest), string(StageAggregate), string(StageEpoch),
		string(StageFit), string(StageAnalyze), string(StageReport),
	}
	for i := 0; i < fitTasks; i++ {
		pts = append(pts, fitTaskPoint(i))
	}
	return pts
}
