package modeling

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"extradeep/internal/mathutil"
	"extradeep/internal/measurement"
	"extradeep/internal/pmnf"
)

func points1D(xs ...float64) []measurement.Point {
	out := make([]measurement.Point, len(xs))
	for i, x := range xs {
		out[i] = measurement.Point{x}
	}
	return out
}

func evalAll(fn func(float64) float64, xs ...float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = fn(x)
	}
	return out
}

func TestFitRecoversConstant(t *testing.T) {
	pts := points1D(2, 4, 8, 16, 32)
	vals := []float64{42, 42, 42, 42, 42}
	m, err := Fit(pts, vals, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Function.Terms) != 0 {
		t.Errorf("expected constant model, got %s", m.Function)
	}
	if math.Abs(m.Function.Constant-42) > 1e-9 {
		t.Errorf("constant = %v, want 42", m.Function.Constant)
	}
}

func TestFitRecoversLinear(t *testing.T) {
	pts := points1D(2, 4, 8, 16, 32, 64)
	vals := evalAll(func(x float64) float64 { return 3 + 2*x }, 2, 4, 8, 16, 32, 64)
	m, err := Fit(pts, vals, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	g := m.Function.Growth()
	if !mathutil.Close(g.PolyDegree, 1) || g.LogDegree != 0 {
		t.Fatalf("growth = %v (%s), want O(x)", g, m.Function)
	}
	if math.Abs(m.Predict(128)-(3+2*128)) > 1e-6 {
		t.Errorf("prediction at 128 = %v, want %v", m.Predict(128), 3+2*128.0)
	}
}

func TestFitRecoversLogarithmic(t *testing.T) {
	xs := []float64{2, 4, 8, 16, 32, 64}
	vals := evalAll(func(x float64) float64 { return 5 + 3*math.Log2(x) }, xs...)
	m, err := Fit(points1D(xs...), vals, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	g := m.Function.Growth()
	if g.PolyDegree != 0 || g.LogDegree != 1 {
		t.Fatalf("growth = %v (%s), want O(log x)", g, m.Function)
	}
}

func TestFitRecoversQuadratic(t *testing.T) {
	xs := []float64{2, 4, 6, 8, 10, 12}
	vals := evalAll(func(x float64) float64 { return 1 + 0.5*x*x }, xs...)
	m, err := Fit(points1D(xs...), vals, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if g := m.Function.Growth(); !mathutil.Close(g.PolyDegree, 2) || g.LogDegree != 0 {
		t.Fatalf("growth = %v (%s), want O(x²)", g, m.Function)
	}
}

func TestFitRecoversCaseStudyShape(t *testing.T) {
	// The paper's case-study model: 158.58 + 0.58·x^(2/3)·log2(x)².
	truth := func(x float64) float64 {
		return 158.58 + 0.58*math.Pow(x, 2.0/3.0)*math.Pow(math.Log2(x), 2)
	}
	xs := []float64{2, 4, 6, 10, 14, 18, 24, 32}
	m, err := Fit(points1D(xs...), evalAll(truth, xs...), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Extrapolate to 64 ranks: error should be tiny on noise-free data.
	if e := m.PercentErrorAt(truth(64), 64); e > 1 {
		t.Errorf("extrapolation error at 64 = %v%% (model %s)", e, m.Function)
	}
}

func TestFitRejectsTooFewPoints(t *testing.T) {
	pts := points1D(2, 4, 8, 16)
	vals := []float64{1, 2, 3, 4}
	if _, err := Fit(pts, vals, DefaultOptions()); !errors.Is(err, ErrTooFewPoints) {
		t.Errorf("err = %v, want ErrTooFewPoints", err)
	}
}

func TestFitRejectsMismatchedLengths(t *testing.T) {
	if _, err := Fit(points1D(1, 2, 3, 4, 5), []float64{1}, DefaultOptions()); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestFitRejectsNonPositiveParams(t *testing.T) {
	pts := points1D(0, 2, 4, 8, 16)
	vals := []float64{1, 1, 1, 1, 1}
	if _, err := Fit(pts, vals, DefaultOptions()); err == nil {
		t.Error("zero parameter value accepted")
	}
}

func TestFitRejectsMixedArity(t *testing.T) {
	pts := []measurement.Point{{2}, {4}, {8}, {16}, {32, 1}}
	vals := []float64{1, 2, 3, 4, 5}
	if _, err := Fit(pts, vals, DefaultOptions()); err == nil {
		t.Error("mixed arity accepted")
	}
}

func TestFitWithNoiseStaysClose(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	truth := func(x float64) float64 { return 100 + 4*x*math.Log2(x) }
	xs := []float64{2, 4, 8, 16, 32, 48, 64}
	vals := make([]float64, len(xs))
	for i, x := range xs {
		vals[i] = truth(x) * (1 + 0.02*rng.NormFloat64())
	}
	m, err := Fit(points1D(xs...), vals, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{96, 128} {
		if e := m.PercentErrorAt(truth(x), x); e > 25 {
			t.Errorf("noisy extrapolation error at %v = %v%% (%s)", x, e, m.Function)
		}
	}
}

func TestFitSeriesUsesMedian(t *testing.T) {
	var s measurement.Series
	for _, x := range []float64{2, 4, 8, 16, 32} {
		// Repetitions contain one gross outlier; the median ignores it.
		s.Add(measurement.Point{x}, 10, 10, 10, 1e6)
	}
	m, err := FitSeries(&s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Function.Constant-10) > 1e-6 || len(m.Function.Terms) != 0 {
		t.Errorf("model = %s, want constant 10", m.Function)
	}
}

func TestFitSeriesMeanIsOutlierSensitive(t *testing.T) {
	var s measurement.Series
	for _, x := range []float64{2, 4, 8, 16, 32} {
		s.Add(measurement.Point{x}, 10, 10, 10, 1e6)
	}
	opts := DefaultOptions()
	opts.UseMean = true
	m, err := FitSeries(&s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict(2) < 1000 {
		t.Errorf("mean aggregation should be dragged by the outlier, got %v", m.Predict(2))
	}
}

func TestFitSeriesNil(t *testing.T) {
	if _, err := FitSeries(nil, DefaultOptions()); err == nil {
		t.Error("nil series accepted")
	}
}

func TestFitSeriesEmptySample(t *testing.T) {
	var s measurement.Series
	s.Samples = append(s.Samples, measurement.Sample{Point: measurement.Point{2}})
	for _, x := range []float64{4, 8, 16, 32} {
		s.Add(measurement.Point{x}, 1)
	}
	if _, err := FitSeries(&s, DefaultOptions()); err == nil {
		t.Error("series with empty sample accepted")
	}
}

func TestPredictIntervalContainsPrediction(t *testing.T) {
	xs := []float64{2, 4, 8, 16, 32, 64}
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, len(xs))
	for i, x := range xs {
		vals[i] = (50 + 2*x) * (1 + 0.03*rng.NormFloat64())
	}
	m, err := Fit(points1D(xs...), vals, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := m.PredictInterval(0.95, 128)
	pred := m.Predict(128)
	if !(lo <= pred && pred <= hi) {
		t.Errorf("interval [%v,%v] does not contain prediction %v", lo, hi, pred)
	}
	if hi-lo == 0 {
		t.Error("interval degenerate despite noisy fit")
	}
}

func TestPredictIntervalNoiselessIsTight(t *testing.T) {
	xs := []float64{2, 4, 8, 16, 32}
	vals := evalAll(func(x float64) float64 { return 7 + x }, xs...)
	m, err := Fit(points1D(xs...), vals, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := m.PredictInterval(0.95, 64)
	if hi-lo > 1e-6*m.Predict(64) {
		t.Errorf("noise-free interval too wide: [%v, %v]", lo, hi)
	}
}

func TestModelQualityStatistics(t *testing.T) {
	xs := []float64{2, 4, 8, 16, 32}
	vals := evalAll(func(x float64) float64 { return 1 + 2*x }, xs...)
	m, err := Fit(points1D(xs...), vals, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.SMAPE > 1e-6 {
		t.Errorf("SMAPE on exact fit = %v, want ≈0", m.SMAPE)
	}
	if m.RSS > 1e-12 {
		t.Errorf("RSS on exact fit = %v, want ≈0", m.RSS)
	}
	if math.Abs(m.R2-1) > 1e-9 {
		t.Errorf("R² = %v, want 1", m.R2)
	}
}

func TestNonNegativeCoefficientOption(t *testing.T) {
	// Strictly decreasing data: with NonNegativeCoefficients the fit falls
	// back to shapes with non-negative slope terms (effectively a constant
	// or near-constant fit); without it, a negative linear term is allowed
	// and fits far better.
	xs := []float64{2, 4, 8, 16, 32}
	vals := evalAll(func(x float64) float64 { return 100 - 2*x }, xs...)

	strict := DefaultOptions()
	mStrict, err := Fit(points1D(xs...), vals, strict)
	if err != nil {
		t.Fatal(err)
	}
	loose := DefaultOptions()
	loose.NonNegativeCoefficients = false
	mLoose, err := Fit(points1D(xs...), vals, loose)
	if err != nil {
		t.Fatal(err)
	}
	if mLoose.RSS > mStrict.RSS {
		t.Errorf("loose fit (%s, rss=%v) should beat strict fit (%s, rss=%v)",
			mLoose.Function, mLoose.RSS, mStrict.Function, mStrict.RSS)
	}
	if mLoose.RSS > 1e-9 {
		t.Errorf("negative-coefficient fit should be exact, rss = %v", mLoose.RSS)
	}
}

func TestTwoTermSearchSpace(t *testing.T) {
	// A genuinely two-term function: c0 + c1·x + c2·x·log(x) — the larger
	// search space should fit it exactly.
	truth := func(x float64) float64 { return 5 + 3*x + 0.5*x*math.Log2(x) }
	xs := []float64{2, 4, 8, 16, 32, 64, 128}
	m, err := Fit(points1D(xs...), evalAll(truth, xs...), LargeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if e := m.PercentErrorAt(truth(256), 256); e > 2 {
		t.Errorf("two-term extrapolation error = %v%% (%s)", e, m.Function)
	}
}

func TestMultiParameterFit(t *testing.T) {
	// f(p, b) = 10 + 0.5·p·log2(b): a separable two-parameter surface over
	// a 5×5 grid.
	var pts []measurement.Point
	var vals []float64
	for _, p := range []float64{2, 4, 8, 16, 32} {
		for _, b := range []float64{32, 64, 128, 256, 512} {
			pts = append(pts, measurement.Point{p, b})
			vals = append(vals, 10+0.5*p*math.Log2(b))
		}
	}
	m, err := Fit(pts, vals, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Predict(64, 1024)
	want := 10 + 0.5*64*10
	if math.Abs(pred-want)/want > 0.05 {
		t.Errorf("multi-param prediction = %v, want ≈%v (%s)", pred, want, m.Function)
	}
}

func TestMultiParameterAdditiveFit(t *testing.T) {
	// f(p, b) = 2·p + 3·log2(b): additive combination.
	var pts []measurement.Point
	var vals []float64
	for _, p := range []float64{2, 4, 8, 16, 32} {
		for _, b := range []float64{32, 64, 128, 256, 512} {
			pts = append(pts, measurement.Point{p, b})
			vals = append(vals, 2*p+3*math.Log2(b))
		}
	}
	m, err := Fit(pts, vals, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Predict(64, 1024)
	want := 2*64 + 3*10.0
	if math.Abs(pred-want)/want > 0.05 {
		t.Errorf("additive prediction = %v, want ≈%v (%s)", pred, want, m.Function)
	}
}

func TestHypothesisCountSingleParam(t *testing.T) {
	opts := DefaultOptions()
	hyps := hypotheses(1, opts)
	// 19 poly × 3 log − 1 (constant shape) = 56 single-term hypotheses,
	// plus the constant hypothesis.
	want := 56 + 1
	if len(hyps) != want {
		t.Errorf("hypothesis count = %d, want %d", len(hyps), want)
	}
}

func TestHypothesisCountTwoTerms(t *testing.T) {
	opts := LargeOptions()
	hyps := hypotheses(1, opts)
	want := 1 + 56 + 56*55/2
	if len(hyps) != want {
		t.Errorf("hypothesis count = %d, want %d", len(hyps), want)
	}
}

func TestSmallOptionsSearchSpaceIsSmaller(t *testing.T) {
	small := len(hypotheses(1, SmallOptions()))
	def := len(hypotheses(1, DefaultOptions()))
	if small >= def {
		t.Errorf("small space (%d) not smaller than default (%d)", small, def)
	}
}

// Property: model selection is deterministic — fitting the same data twice
// yields the same function string.
func TestFitDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	xs := []float64{2, 4, 8, 16, 32, 64}
	vals := make([]float64, len(xs))
	for i, x := range xs {
		vals[i] = (20 + x) * (1 + 0.05*rng.NormFloat64())
	}
	m1, err := Fit(points1D(xs...), vals, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(points1D(xs...), vals, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m1.Function.String() != m2.Function.String() {
		t.Errorf("non-deterministic selection: %s vs %s", m1.Function, m2.Function)
	}
}

// Property: fitting f(x)=c+a·x^i·log^j x recovers growth for random shapes.
func TestFitRecoversRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	shapes := []pmnf.Factor{
		{PolyExp: 1}, {PolyExp: 2}, {PolyExp: 0.5},
		{LogExp: 1}, {PolyExp: 1, LogExp: 1},
	}
	xs := []float64{2, 4, 8, 16, 32, 64, 128}
	for trial := 0; trial < 20; trial++ {
		shape := shapes[rng.Intn(len(shapes))]
		c0 := 1 + rng.Float64()*10
		c1 := 0.5 + rng.Float64()*5
		vals := make([]float64, len(xs))
		for i, x := range xs {
			vals[i] = c0 + c1*shape.Eval(x)
		}
		m, err := Fit(points1D(xs...), vals, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		wantG := pmnf.Growth{PolyDegree: shape.PolyExp, LogDegree: shape.LogExp}
		if g := m.Function.Growth(); g.Compare(wantG) != 0 {
			t.Errorf("trial %d: recovered growth %v, want %v (model %s)", trial, g, wantG, m.Function)
		}
	}
}

// ---------------------------------------------------------------------
// Regression tests for the typed error contract: Fit/FitSeries surface
// sentinel errors instead of relying on downstream guards.
// ---------------------------------------------------------------------

func TestFitMismatchedLengthsIsTypedError(t *testing.T) {
	_, err := Fit(points1D(2, 4, 8, 16, 32), []float64{1, 2}, DefaultOptions())
	if !errors.Is(err, ErrMismatchedLengths) {
		t.Errorf("err = %v, want ErrMismatchedLengths", err)
	}
	_, err = Fit(nil, []float64{1}, DefaultOptions())
	if !errors.Is(err, ErrMismatchedLengths) {
		t.Errorf("nil points: err = %v, want ErrMismatchedLengths", err)
	}
}

func TestFitDegenerateValuesIsNoHypothesis(t *testing.T) {
	// NaN observations make every hypothesis (including the constant)
	// unfittable; the typed sentinel must surface rather than a nil-model
	// panic downstream.
	vals := []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()}
	_, err := Fit(points1D(2, 4, 8, 16, 32), vals, DefaultOptions())
	if !errors.Is(err, ErrNoHypothesis) {
		t.Errorf("err = %v, want ErrNoHypothesis", err)
	}
}

func TestFitSeriesSurfacesNoHypothesis(t *testing.T) {
	var s measurement.Series
	for _, x := range []float64{2, 4, 8, 16, 32} {
		s.Add(measurement.Point{x}, math.NaN())
	}
	if _, err := FitSeries(&s, DefaultOptions()); !errors.Is(err, ErrNoHypothesis) {
		t.Errorf("err = %v, want ErrNoHypothesis", err)
	}
}

// ---------------------------------------------------------------------
// Hypothesis-space memoization: repeated Fit calls with equal options
// must reuse the cached search space and keep producing identical models.
// ---------------------------------------------------------------------

func TestHypothesisMemoizationReturnsSharedSpace(t *testing.T) {
	opts := DefaultOptions()
	h1 := hypothesesCached(1, opts)
	h2 := hypothesesCached(1, opts)
	if len(h1) == 0 || len(h1) != len(h2) {
		t.Fatalf("cached hypothesis sets differ: %d vs %d", len(h1), len(h2))
	}
	if &h1[0] != &h2[0] {
		t.Error("second lookup rebuilt the hypothesis space instead of reusing the cache")
	}
	s1 := shapeSet(opts)
	s2 := shapeSet(opts)
	if &s1[0] != &s2[0] {
		t.Error("second shapeSet lookup rebuilt the shapes instead of reusing the cache")
	}
}

func TestMemoizedFitMatchesFreshFit(t *testing.T) {
	xs := []float64{2, 4, 8, 16, 32}
	vals := evalAll(func(x float64) float64 { return 10 + 2*x }, xs...)
	var first string
	for i := 0; i < 3; i++ {
		m, err := Fit(points1D(xs...), vals, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = m.Function.String()
		} else if got := m.Function.String(); got != first {
			t.Errorf("call %d: model %s, want %s", i, got, first)
		}
	}
}
