// Package modeling implements Extra-Deep's automated empirical model
// creation (Section 2.3 of the paper): it instantiates the Performance
// Model Normal Form with exponents drawn from configurable sets I and J,
// fits the coefficients of every hypothesis by linear regression, and
// selects the hypothesis with the smallest cross-validated symmetric mean
// absolute percentage error (SMAPE).
//
// Since the design-matrix engine refactor, fitting runs on a per-task
// fitContext (see fitcontext.go) that evaluates every basis term once per
// configuration into cached columns and replays the per-fold solves from
// them — bit-identical to the reference direct-solve oracle (oracle.go),
// which survives behind the EDFIT_ORACLE flag for verification.
package modeling

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"extradeep/internal/mathutil"
	"extradeep/internal/measurement"
	"extradeep/internal/pmnf"
)

// Options steers hypothesis-space generation and model selection.
type Options struct {
	// PolyExponents is the exponent set I for the polynomial part.
	PolyExponents []float64
	// LogExponents is the exponent set J for the logarithmic part.
	LogExponents []int
	// MaxTerms is the maximum number of non-constant terms h per model.
	// The constant c₀ is always present. Extra-P's default is 1 for
	// single-parameter models.
	MaxTerms int
	// UseMean selects mean instead of median aggregation over repetitions
	// (for the noise-resilience ablation).
	UseMean bool
	// MinPoints is the minimum number of measurement points required;
	// zero means measurement.MinModelingPoints (= 5).
	MinPoints int
	// NonNegativeCoefficients rejects hypotheses whose fitted leading
	// coefficients are negative; performance metrics of scaling
	// applications are typically non-decreasing, and negative terms tend
	// to extrapolate into nonsense. The constant may still be any sign.
	NonNegativeCoefficients bool
}

// DefaultOptions returns the Extra-P default search space: polynomial
// exponents in {0, 1/4, 1/3, 1/2, 2/3, 3/4, 1, 5/4, 4/3, 3/2, 5/3, 7/4, 2,
// 9/4, 7/3, 5/2, 8/3, 11/4, 3} and logarithmic exponents in {0, 1, 2},
// with a single non-constant term.
func DefaultOptions() Options {
	return Options{
		PolyExponents: []float64{
			0, 1.0 / 4, 1.0 / 3, 1.0 / 2, 2.0 / 3, 3.0 / 4, 1,
			5.0 / 4, 4.0 / 3, 3.0 / 2, 5.0 / 3, 7.0 / 4, 2,
			9.0 / 4, 7.0 / 3, 5.0 / 2, 8.0 / 3, 11.0 / 4, 3,
		},
		LogExponents:            []int{0, 1, 2},
		MaxTerms:                1,
		NonNegativeCoefficients: true,
	}
}

// StrongScalingOptions extends the default search space with negative
// polynomial exponents, which are required to model runtimes that shrink
// with scale (strong scaling: T ≈ a + b·x⁻¹ or b·log(x)/x). The positive
// shapes remain available, so weak-scaling data still fits.
func StrongScalingOptions() Options {
	o := DefaultOptions()
	neg := []float64{-1.0 / 4, -1.0 / 3, -1.0 / 2, -2.0 / 3, -3.0 / 4, -1, -4.0 / 3, -3.0 / 2, -2}
	o.PolyExponents = append(neg, o.PolyExponents...)
	return o
}

// SmallOptions returns a reduced search space (integer exponents only),
// used by the search-space ablation.
func SmallOptions() Options {
	o := DefaultOptions()
	o.PolyExponents = []float64{0, 1, 2, 3}
	return o
}

// LargeOptions returns an enlarged search space with two compound terms,
// used by the search-space ablation.
func LargeOptions() Options {
	o := DefaultOptions()
	o.MaxTerms = 2
	return o
}

// normalizeOptions resolves every zero-valued search-space knob to its
// default in one place: MaxTerms ≤ 0 becomes 1, empty exponent sets take
// the Extra-P defaults, and MinPoints 0 becomes
// measurement.MinModelingPoints. (These blocks used to be duplicated
// across Fit and its callers.)
func normalizeOptions(opts Options) Options {
	if opts.MaxTerms <= 0 {
		opts.MaxTerms = 1
	}
	if len(opts.PolyExponents) == 0 || len(opts.LogExponents) == 0 {
		def := DefaultOptions()
		if len(opts.PolyExponents) == 0 {
			opts.PolyExponents = def.PolyExponents
		}
		if len(opts.LogExponents) == 0 {
			opts.LogExponents = def.LogExponents
		}
	}
	if opts.MinPoints == 0 {
		opts.MinPoints = measurement.MinModelingPoints
	}
	return opts
}

// EffectiveMinPoints returns MinPoints with the zero value resolved to
// the paper's default of measurement.MinModelingPoints.
func (o Options) EffectiveMinPoints() int {
	if o.MinPoints == 0 {
		return measurement.MinModelingPoints
	}
	return o.MinPoints
}

// Unset reports whether the options carry no explicit search space —
// neither exponent sets nor a term budget — so callers substituting a
// context-dependent default (e.g. strong-scaling exponents) know the
// user left the space unconfigured.
func (o Options) Unset() bool {
	return len(o.PolyExponents) == 0 && o.MaxTerms == 0
}

// Model is a fitted performance model together with its quality statistics.
type Model struct {
	// Function is the selected PMNF instance.
	Function *pmnf.Function
	// SMAPE is the cross-validated symmetric mean absolute percentage
	// error (percent) that selected this hypothesis.
	SMAPE float64
	// RSS is the residual sum of squares on the modeling points.
	RSS float64
	// R2 is the coefficient of determination on the modeling points
	// (NaN when the data has no variance).
	R2 float64
	// RelResidualStd is the standard deviation of the relative residuals
	// (predicted−actual)/actual on the modeling points; it widens the
	// prediction intervals multiplicatively with the predicted value.
	RelResidualStd float64
	// Points and Actual are the modeling inputs the model was fitted on.
	Points []measurement.Point
	// Actual holds the aggregated (median or mean) observations at Points.
	Actual []float64
}

// Predict evaluates the model at the given parameter values.
func (m *Model) Predict(params ...float64) float64 { return m.Function.Eval(params...) }

// PredictInterval returns the two-sided confidence interval of level conf
// (e.g. 0.95) around the prediction at the given point, based on the
// relative residual spread of the fit and a Student-t quantile with
// n−k degrees of freedom.
func (m *Model) PredictInterval(conf float64, params ...float64) (lo, hi float64) {
	pred := m.Predict(params...)
	df := len(m.Points) - (len(m.Function.Terms) + 1)
	if df < 1 {
		df = 1
	}
	t := mathutil.StudentTQuantile(0.5+conf/2, df)
	if math.IsNaN(t) {
		return pred, pred
	}
	delta := math.Abs(pred) * m.RelResidualStd * t
	return pred - delta, pred + delta
}

// PercentErrorAt returns the absolute percentage error of the model's
// prediction against an observed value at the given point.
func (m *Model) PercentErrorAt(actual float64, params ...float64) float64 {
	return mathutil.AbsPercentError(m.Predict(params...), actual)
}

// ErrTooFewPoints reports insufficient measurement points for modeling.
var ErrTooFewPoints = measurement.ErrTooFewPoints

// ErrNoHypothesis is returned when the hypothesis set is empty or every
// generated hypothesis failed to fit (e.g. degenerate inputs such as
// all-identical points).
var ErrNoHypothesis = errors.New("modeling: no fittable hypothesis")

// ErrMismatchedLengths is returned when the number of points and the
// number of observed values disagree.
var ErrMismatchedLengths = errors.New("modeling: points/values length mismatch")

// Fit creates a performance model from measurement points and their
// aggregated observations. All points must have the same arity; the number
// of distinct points must be at least Options.MinPoints (default 5).
func Fit(points []measurement.Point, values []float64, opts Options) (*Model, error) {
	f, err := NewFitter(points, values, opts)
	if err != nil {
		return nil, err
	}
	return f.Fit()
}

// FitSeries aggregates each sample of the series (median by default, mean
// with Options.UseMean) and fits a model on the aggregated values.
func FitSeries(s *measurement.Series, opts Options) (*Model, error) {
	f, err := NewSeriesFitter(s, opts)
	if err != nil {
		return nil, err
	}
	return f.Fit()
}

// sparseTopShapes is the number of best single-parameter shapes per
// parameter that enter the combination stage of sparse modeling.
const sparseTopShapes = 4

// rated is one stage-1 ranking entry of the sparse search: a
// single-parameter shape and its cross-validated SMAPE on the axis line.
type rated struct {
	shape pmnf.Factor
	smape float64
}

// ratedLess orders stage-1 rankings: primarily by CV-SMAPE, with SMAPE
// ties broken by shape identity (polynomial exponent, then log exponent).
// The secondary key makes the former insertion-order tie-break explicit:
// the top shapes of a tied rank no longer depend on the order the
// exponent sets happened to enumerate in.
func ratedLess(a, b rated) bool {
	//edlint:ignore floateq tie detection: only exactly equal CV-SMAPE values fall through to the shape-identity key
	if a.smape != b.smape {
		return a.smape < b.smape
	}
	//edlint:ignore floateq shape identity: exponents come verbatim from the finite option sets, equality is exact
	if a.shape.PolyExp != b.shape.PolyExp {
		return a.shape.PolyExp < b.shape.PolyExp
	}
	return a.shape.LogExp < b.shape.LogExp
}

// cvRanker supplies, for one (points, values) dataset, the
// cross-validation function used to rank hypotheses on it. The fit engine
// and the reference oracle plug in their respective implementations so
// sparse hypothesis generation is shared between them.
type cvRanker func(points []measurement.Point, values []float64) func(hypothesis) (float64, bool)

// sparseHypotheses implements the two-stage multi-parameter search: rank
// every single-parameter shape by cross-validated SMAPE, then combine the
// top shapes of each parameter pair additively, multiplicatively, and in
// hybrid (term + cross-term) form.
func sparseHypotheses(arity int, points []measurement.Point, values []float64, opts Options, ranker cvRanker) []hypothesis {
	shapes := shapeSet(opts)

	// Stage 1: evaluate single-parameter hypotheses.
	topPerParam := make([][]rated, arity)
	var out []hypothesis
	out = append(out, hypothesis{}) // constant
	for param := 0; param < arity; param++ {
		// Rank shapes on the axis-aligned line through the grid where all
		// other parameters sit at their minimum — on the full cross
		// product the other parameters' effect would drown the shape
		// signal of this one.
		linePts, lineVals := axisLine(points, values, param)
		if len(linePts) < 3 {
			linePts, lineVals = points, values
		}
		cv := ranker(linePts, lineVals)
		var rs []rated
		for _, s := range shapes {
			f := s
			f.Param = param
			h := hypothesis{terms: []pmnf.Term{{Factors: []pmnf.Factor{f}}}}
			out = append(out, h)
			smape, ok := cv(h)
			if !ok {
				continue
			}
			rs = append(rs, rated{shape: f, smape: smape})
		}
		sort.SliceStable(rs, func(i, j int) bool { return ratedLess(rs[i], rs[j]) })
		if len(rs) > sparseTopShapes {
			rs = rs[:sparseTopShapes]
		}
		topPerParam[param] = rs
	}

	// Stage 2: combinations of the top shapes per parameter pair.
	for p1 := 0; p1 < arity; p1++ {
		for p2 := p1 + 1; p2 < arity; p2++ {
			for _, r1 := range topPerParam[p1] {
				for _, r2 := range topPerParam[p2] {
					f1, f2 := r1.shape, r2.shape
					out = append(out, hypothesis{terms: []pmnf.Term{
						{Factors: []pmnf.Factor{f1}},
						{Factors: []pmnf.Factor{f2}},
					}})
					out = append(out, hypothesis{terms: []pmnf.Term{
						{Factors: []pmnf.Factor{f1, f2}},
					}})
					out = append(out, hypothesis{terms: []pmnf.Term{
						{Factors: []pmnf.Factor{f1}},
						{Factors: []pmnf.Factor{f1, f2}},
					}})
					out = append(out, hypothesis{terms: []pmnf.Term{
						{Factors: []pmnf.Factor{f2}},
						{Factors: []pmnf.Factor{f1, f2}},
					}})
				}
			}
		}
	}
	return out
}

// axisLine extracts the subset of points (and their values) where every
// parameter except `param` is at its data minimum — the cheapest 1-D line
// through a measurement grid, used to rank single-parameter shapes.
func axisLine(points []measurement.Point, values []float64, param int) ([]measurement.Point, []float64) {
	arity := len(points[0])
	mins := make([]float64, arity)
	copy(mins, points[0])
	for _, p := range points {
		for i, v := range p {
			if v < mins[i] {
				mins[i] = v
			}
		}
	}
	var pts []measurement.Point
	var vals []float64
	for i, p := range points {
		onLine := true
		for j, v := range p {
			//edlint:ignore floateq sweep-line membership: the coordinate either is the stored minimum value or the point is off the line
			if j != param && v != mins[j] {
				onLine = false
				break
			}
		}
		if onLine {
			pts = append(pts, p)
			vals = append(vals, values[i])
		}
	}
	return pts, vals
}

// The hypothesis search space depends only on the exponent sets and the
// term budget, yet it used to be regenerated on every Fit call — once per
// kernel × metric, thousands of times per analysis run. The caches below
// memoize the expanded shapes and the single-parameter hypothesis list per
// (arity, Options) signature. Cached slices are shared across goroutines
// and must never be mutated by callers; the fitting code only reads them.
var (
	shapeCache      sync.Map // exponents key → []pmnf.Factor
	hypothesisCache sync.Map // arity/terms/exponents key → []hypothesis
)

// exponentsKey canonicalizes the exponent sets of the options into a cache
// key. Exponent order is preserved: a reordered set is a different (if
// equivalent) search space and simply caches separately.
func exponentsKey(opts Options) string {
	var b strings.Builder
	for _, e := range opts.PolyExponents {
		b.WriteString(strconv.FormatFloat(e, 'g', -1, 64))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	for _, e := range opts.LogExponents {
		b.WriteString(strconv.Itoa(e))
		b.WriteByte(',')
	}
	return b.String()
}

// shapeSet expands the exponent sets into the factor shapes of the search
// space (excluding the constant), memoized per exponent signature. The
// returned slice is shared — callers must not modify it.
func shapeSet(opts Options) []pmnf.Factor {
	key := exponentsKey(opts)
	if v, ok := shapeCache.Load(key); ok {
		return v.([]pmnf.Factor)
	}
	shapes := make([]pmnf.Factor, 0, len(opts.PolyExponents)*len(opts.LogExponents))
	for _, i := range opts.PolyExponents {
		for _, j := range opts.LogExponents {
			if i == 0 && j == 0 {
				continue
			}
			shapes = append(shapes, pmnf.Factor{PolyExp: i, LogExp: j})
		}
	}
	shapeCache.Store(key, shapes)
	return shapes
}

// hypothesesCached returns the memoized single-parameter hypothesis space
// for the given arity and options. The returned slice is shared — callers
// must not modify it.
func hypothesesCached(arity int, opts Options) []hypothesis {
	key := strconv.Itoa(arity) + "#" + strconv.Itoa(opts.MaxTerms) + "#" + exponentsKey(opts)
	if v, ok := hypothesisCache.Load(key); ok {
		return v.([]hypothesis)
	}
	hyps := hypotheses(arity, opts)
	hypothesisCache.Store(key, hyps)
	return hyps
}

// hypothesis is a candidate model shape: the basis terms without
// coefficients. The constant basis is implicit.
type hypothesis struct {
	terms []pmnf.Term // coefficients ignored; factors define the basis
}

// hypotheses generates the single-parameter hypothesis search space: the
// constant, single terms x^i·log^j for (i,j) ∈ I×J\{(0,0)} and, when
// MaxTerms ≥ 2, all unordered pairs of distinct shapes. Multi-parameter
// search spaces are built adaptively by sparseHypotheses.
func hypotheses(arity int, opts Options) []hypothesis {
	shapes := shapeSet(opts)
	var out []hypothesis
	// The constant-only hypothesis is always a candidate.
	out = append(out, hypothesis{})
	_ = arity
	for _, s := range shapes {
		out = append(out, hypothesis{terms: []pmnf.Term{{Factors: []pmnf.Factor{s}}}})
	}
	if opts.MaxTerms >= 2 {
		for a := 0; a < len(shapes); a++ {
			for b := a + 1; b < len(shapes); b++ {
				out = append(out, hypothesis{terms: []pmnf.Term{
					{Factors: []pmnf.Factor{shapes[a]}},
					{Factors: []pmnf.Factor{shapes[b]}},
				}})
			}
		}
	}
	return out
}

// validateFitInputs runs the shared precondition checks of every fit
// entry point; opts must already be normalized.
func validateFitInputs(points []measurement.Point, values []float64, opts Options) error {
	if len(points) != len(values) {
		return fmt.Errorf("%w: %d points but %d values", ErrMismatchedLengths, len(points), len(values))
	}
	if len(points) < opts.MinPoints {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewPoints, len(points), opts.MinPoints)
	}
	arity := len(points[0])
	for _, p := range points {
		if len(p) != arity {
			return fmt.Errorf("modeling: mixed point arity %d vs %d", len(p), arity)
		}
	}
	if arity == 0 {
		return errors.New("modeling: zero-arity points")
	}
	for _, p := range points {
		for _, v := range p {
			if v <= 0 {
				return fmt.Errorf("modeling: parameter value %v outside PMNF domain (must be > 0)", v)
			}
		}
	}
	return nil
}
