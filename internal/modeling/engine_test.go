package modeling

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"extradeep/internal/measurement"
	"extradeep/internal/pmnf"
	"extradeep/internal/propcheck"
)

// These tests pin the central contract of the design-matrix engine: for
// every input, the fast path (Fitter.Fit on a fitContext) and the frozen
// direct-solve oracle (oracle.go) must agree bit for bit — same accepted
// hypotheses, same winning model, same coefficient, SMAPE and RSS bits —
// and must fail with the same error when no model exists.

// engineFit runs the fast path on already-valid inputs.
func engineFit(points []measurement.Point, values []float64, opts Options) (*Model, error) {
	f, err := NewFitter(points, values, opts)
	if err != nil {
		return nil, err
	}
	return f.Fit()
}

// oracleFit runs the reference path on the same normalized inputs the
// engine sees.
func oracleFit(points []measurement.Point, values []float64, opts Options) (*Model, error) {
	opts = normalizeOptions(opts)
	if err := validateFitInputs(points, values, opts); err != nil {
		return nil, err
	}
	return fitOracle(points, values, opts)
}

// sameModelBits reports the first bit-level difference between two fitted
// models, or nil when they are identical in every selection-relevant
// field.
func sameModelBits(fast, ref *Model) error {
	if got, want := fast.Function.String(), ref.Function.String(); got != want {
		return fmt.Errorf("winning hypothesis differs: engine %q, oracle %q", got, want)
	}
	if got, want := math.Float64bits(fast.Function.Constant), math.Float64bits(ref.Function.Constant); got != want {
		return fmt.Errorf("constant bits differ: engine %x (%g), oracle %x (%g)",
			got, fast.Function.Constant, want, ref.Function.Constant)
	}
	if len(fast.Function.Terms) != len(ref.Function.Terms) {
		return fmt.Errorf("term count differs: engine %d, oracle %d", len(fast.Function.Terms), len(ref.Function.Terms))
	}
	for i, ft := range fast.Function.Terms {
		rt := ref.Function.Terms[i]
		if got, want := math.Float64bits(ft.Coefficient), math.Float64bits(rt.Coefficient); got != want {
			return fmt.Errorf("term %d coefficient bits differ: engine %x (%g), oracle %x (%g)",
				i, got, ft.Coefficient, want, rt.Coefficient)
		}
		if len(ft.Factors) != len(rt.Factors) {
			return fmt.Errorf("term %d factor count differs", i)
		}
		for j, f := range ft.Factors {
			if f != rt.Factors[j] {
				return fmt.Errorf("term %d factor %d differs: engine %+v, oracle %+v", i, j, f, rt.Factors[j])
			}
		}
	}
	for _, c := range []struct {
		name       string
		fast, refV float64
	}{
		{"SMAPE", fast.SMAPE, ref.SMAPE},
		{"RSS", fast.RSS, ref.RSS},
		{"R2", fast.R2, ref.R2},
		{"RelResidualStd", fast.RelResidualStd, ref.RelResidualStd},
	} {
		if math.Float64bits(c.fast) != math.Float64bits(c.refV) {
			return fmt.Errorf("%s bits differ: engine %g (%x), oracle %g (%x)",
				c.name, c.fast, math.Float64bits(c.fast), c.refV, math.Float64bits(c.refV))
		}
	}
	return nil
}

// checkEquivalence runs both paths and demands identical outcomes —
// errors included.
func checkEquivalence(points []measurement.Point, values []float64, opts Options) error {
	fast, fastErr := engineFit(points, values, opts)
	ref, refErr := oracleFit(points, values, opts)
	switch {
	case fastErr == nil && refErr != nil:
		return fmt.Errorf("engine fitted but oracle failed: %v", refErr)
	case fastErr != nil && refErr == nil:
		return fmt.Errorf("oracle fitted but engine failed: %v", fastErr)
	case fastErr != nil:
		if fastErr.Error() != refErr.Error() {
			return fmt.Errorf("errors differ: engine %q, oracle %q", fastErr, refErr)
		}
		return nil
	}
	return sameModelBits(fast, ref)
}

func TestEngineMatchesOracleCanonical(t *testing.T) {
	xs := []float64{2, 4, 6, 8, 10}
	mk := func(f func(x float64) float64) ([]measurement.Point, []float64) {
		points := make([]measurement.Point, len(xs))
		values := make([]float64, len(xs))
		for i, x := range xs {
			points[i] = measurement.Point{x}
			values[i] = f(x)
		}
		return points, values
	}
	cases := []struct {
		name string
		f    func(x float64) float64
		opts Options
	}{
		{"constant", func(x float64) float64 { return 42 }, DefaultOptions()},
		{"linear", func(x float64) float64 { return 3 + 2*x }, DefaultOptions()},
		{"quadratic", func(x float64) float64 { return 1 + 0.5*x*x }, DefaultOptions()},
		{"loglinear", func(x float64) float64 { return 5 + 3*x*math.Log2(x) }, DefaultOptions()},
		{"noisy", func(x float64) float64 { return 10 + x*math.Sqrt(x) + math.Sin(x*7)*0.4 }, DefaultOptions()},
		{"strongscaling", func(x float64) float64 { return 2 + 80/x }, StrongScalingOptions()},
		{"twoterms", func(x float64) float64 { return 1 + 2*x + 0.3*x*x }, LargeOptions()},
		{"smallspace", func(x float64) float64 { return 4 + x }, SmallOptions()},
		{"decreasing-negcoef", func(x float64) float64 { return 100 - 3*x }, DefaultOptions()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			points, values := mk(tc.f)
			if err := checkEquivalence(points, values, tc.opts); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEngineMatchesOracleMultiParam(t *testing.T) {
	var points []measurement.Point
	var values []float64
	for _, p := range []float64{2, 4, 8, 16} {
		for _, b := range []float64{32, 64, 128, 256} {
			points = append(points, measurement.Point{p, b})
			values = append(values, 3+0.5*p*math.Log2(p)+0.01*b+0.001*p*b)
		}
	}
	if err := checkEquivalence(points, values, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if err := checkEquivalence(points, values, StrongScalingOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestForceOracleRoutesFit(t *testing.T) {
	defer func(v bool) { forceOracle = v }(forceOracle)

	points := points1D(2, 4, 6, 8, 10)
	values := []float64{5, 9, 13, 17, 21}
	forceOracle = false
	fast, err := engineFit(points, values, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	forceOracle = true
	viaFlag, err := engineFit(points, values, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sameModelBits(fast, viaFlag); err != nil {
		t.Fatalf("oracle flag changed the selected model: %v", err)
	}
}

// TestPropEngineOracleEquivalence sweeps randomized single-parameter
// datasets (noisy power laws, occasional log factors, decreasing
// sequences, tie-heavy near-constant data) across the option presets and
// demands bit-identical selection between engine and oracle.
func TestPropEngineOracleEquivalence(t *testing.T) {
	type eqCase struct {
		kind   int // 0 weak-scaling noisy, 1 strong-scaling, 2 near-constant ties
		a, c   float64
		e      float64
		noise  float64
		optSel int
	}
	gen := propcheck.Gen[eqCase]{
		Generate: func(r *propcheck.Rand) eqCase {
			exps := []float64{0, 0.5, 1, 1.5, 2, 3}
			return eqCase{
				kind:   r.Intn(3),
				a:      r.Float64Range(0, 50),
				c:      r.Float64Range(0.05, 20),
				e:      exps[r.Intn(len(exps))],
				noise:  r.Float64Range(0, 0.1),
				optSel: r.Intn(3),
			}
		},
		Describe: func(c eqCase) string {
			return fmt.Sprintf("{kind=%d y=%g+%g·x^%g noise=%g opts=%d}", c.kind, c.a, c.c, c.e, c.noise, c.optSel)
		},
	}
	xs := []float64{2, 4, 8, 16, 32, 64}
	propcheck.CheckConfig(t, propcheck.Config{Iterations: 60}, gen, func(c eqCase) error {
		points := make([]measurement.Point, len(xs))
		values := make([]float64, len(xs))
		for i, x := range xs {
			points[i] = measurement.Point{x}
			switch c.kind {
			case 0:
				values[i] = c.a + c.c*math.Pow(x, c.e)
			case 1:
				values[i] = c.a + 1 + c.c/x
			default:
				values[i] = c.a + 1 // exactly constant: every shape ties
			}
			// Deterministic pseudo-noise derived from the case parameters —
			// reproducible under propcheck replay.
			values[i] *= 1 + c.noise*math.Sin(x*c.c+c.a)
		}
		var opts Options
		switch c.optSel {
		case 0:
			opts = DefaultOptions()
		case 1:
			opts = StrongScalingOptions()
		default:
			opts = LargeOptions()
		}
		return checkEquivalence(points, values, opts)
	})
}

// TestPropEngineOracleEquivalenceGrid does the same over randomized
// two-parameter grids, exercising the shared sparse hypothesis search
// (axis-line ranking, combination stage) on both paths.
func TestPropEngineOracleEquivalenceGrid(t *testing.T) {
	type gridCase struct {
		a, cp, cb, cross float64
		logp             bool
	}
	gen := propcheck.Gen[gridCase]{
		Generate: func(r *propcheck.Rand) gridCase {
			return gridCase{
				a:     r.Float64Range(1, 20),
				cp:    r.Float64Range(0.1, 5),
				cb:    r.Float64Range(0.001, 0.1),
				cross: r.Float64Range(0, 0.01),
				logp:  r.Bool(),
			}
		},
		Describe: func(c gridCase) string {
			return fmt.Sprintf("{a=%g cp=%g cb=%g cross=%g logp=%v}", c.a, c.cp, c.cb, c.cross, c.logp)
		},
	}
	propcheck.CheckConfig(t, propcheck.Config{Iterations: 12}, gen, func(c gridCase) error {
		var points []measurement.Point
		var values []float64
		for _, p := range []float64{2, 4, 8, 16} {
			for _, b := range []float64{32, 64, 128, 256} {
				points = append(points, measurement.Point{p, b})
				v := c.a + c.cp*p + c.cb*b + c.cross*p*b
				if c.logp {
					v += c.cp * math.Log2(p)
				}
				values = append(values, v)
			}
		}
		return checkEquivalence(points, values, DefaultOptions())
	})
}

// TestHatMatrixCVAgreesWithReplay pins the numerical agreement of the
// cvHat strategy (hat-matrix-diagonal LOOCV from one full solve) with the
// default fold-replay on well-conditioned data. The agreement is
// tolerance-based, not bitwise — cvHat exists as groundwork for large-n
// refits where O(n·k²) matters, and this test documents exactly how far
// it may drift.
func TestHatMatrixCVAgreesWithReplay(t *testing.T) {
	opts := normalizeOptions(DefaultOptions())
	opts.NonNegativeCoefficients = false // replay rejects per-fold signs; hat cannot see them
	points := points1D(2, 4, 8, 16, 32, 64)
	values := make([]float64, len(points))
	for i, p := range points {
		x := p[0]
		values[i] = 3 + 2*x + 0.1*x*math.Log2(x)
	}

	replay := newFitContext(points, values, opts)
	hat := newFitContext(points, values, opts)
	hat.mode = cvHat

	both, compared := 0, 0
	for _, h := range hypothesesCached(1, opts) {
		sr, okR := replay.crossValidate(h)
		sh, okH := hat.crossValidate(h)
		if okR != okH {
			// Fold-singularity semantics legitimately differ (leverage → 1
			// vs a singular fold solve); just require it to be rare.
			continue
		}
		if !okR {
			continue
		}
		both++
		if relDiff := math.Abs(sr-sh) / (1 + math.Abs(sr)); relDiff > 1e-6 {
			t.Fatalf("hypothesis %d: replay SMAPE %g vs hat SMAPE %g (rel diff %g)", both, sr, sh, relDiff)
		}
		compared++
	}
	if compared < 10 {
		t.Fatalf("only %d hypotheses comparable — data unexpectedly degenerate", compared)
	}
}

// TestSparseRankingTieBreakDeterministic exercises the explicit
// shape-identity tie-break of the stage-1 ranking (ratedLess): with
// exactly tied CV-SMAPE values the ranking no longer depends on the order
// the exponent sets enumerated in.
func TestSparseRankingTieBreakDeterministic(t *testing.T) {
	shapes := []pmnf.Factor{
		{PolyExp: 2, LogExp: 0},
		{PolyExp: 0.5, LogExp: 1},
		{PolyExp: 1, LogExp: 0},
		{PolyExp: 0.5, LogExp: 0},
		{PolyExp: 1, LogExp: 2},
	}
	perms := [][]int{
		{0, 1, 2, 3, 4},
		{4, 3, 2, 1, 0},
		{2, 4, 0, 3, 1},
	}
	var want []rated
	for pi, perm := range perms {
		rs := make([]rated, 0, len(shapes))
		for _, idx := range perm {
			rs = append(rs, rated{shape: shapes[idx], smape: 0.25}) // all tied
		}
		sort.SliceStable(rs, func(i, j int) bool { return ratedLess(rs[i], rs[j]) })
		if pi == 0 {
			want = rs
			for i := 1; i < len(rs); i++ {
				if ratedLess(rs[i], rs[i-1]) {
					t.Fatalf("sorted order violates ratedLess at %d", i)
				}
			}
			continue
		}
		for i := range rs {
			if rs[i].shape != want[i].shape {
				t.Fatalf("permutation %d: rank %d is %+v, want %+v — tie-break depends on insertion order",
					pi, i, rs[i].shape, want[i].shape)
			}
		}
	}
}

// TestSparseSelectionStableUnderExponentOrder drives the tie-break
// end-to-end: reordering the exponent sets changes shape enumeration
// order but must not change the selected model on tie-heavy data.
func TestSparseSelectionStableUnderExponentOrder(t *testing.T) {
	var points []measurement.Point
	var values []float64
	for _, p := range []float64{2, 4, 8, 16} {
		for _, b := range []float64{32, 64, 128, 256} {
			points = append(points, measurement.Point{p, b})
			values = append(values, 7) // constant surface: maximal ties
		}
	}
	fwd := DefaultOptions()
	rev := DefaultOptions()
	for i, j := 0, len(rev.PolyExponents)-1; i < j; i, j = i+1, j-1 {
		rev.PolyExponents[i], rev.PolyExponents[j] = rev.PolyExponents[j], rev.PolyExponents[i]
	}
	m1, err1 := engineFit(points, values, fwd)
	m2, err2 := engineFit(points, values, rev)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("outcome depends on exponent order: %v vs %v", err1, err2)
	}
	if err1 != nil {
		return
	}
	if err := sameModelBits(m1, m2); err != nil {
		t.Fatalf("selection depends on exponent enumeration order: %v", err)
	}
}

func TestAxisLineEdgeCases(t *testing.T) {
	t.Run("fewer-than-three-line-points", func(t *testing.T) {
		// Only two points share the minimum of parameter 1, so the axis
		// line through parameter 0 has 2 < 3 points and the sparse search
		// must fall back to the full set (pinned here via axisLine's
		// return; the fallback branch is in sparseHypotheses).
		points := []measurement.Point{{2, 32}, {4, 32}, {2, 64}, {4, 64}, {8, 64}}
		values := []float64{1, 2, 3, 4, 5}
		pts, vals := axisLine(points, values, 0)
		if len(pts) != 2 || len(vals) != 2 {
			t.Fatalf("axis line has %d points, want 2", len(pts))
		}
		// The full fit must still work through the fallback.
		if _, err := engineFit(points, values, DefaultOptions()); err != nil {
			t.Fatalf("fallback fit failed: %v", err)
		}
	})
	t.Run("duplicate-configurations", func(t *testing.T) {
		points := []measurement.Point{{2, 32}, {2, 32}, {4, 32}, {8, 32}, {16, 32}}
		values := []float64{1.0, 1.1, 2, 3, 4}
		pts, vals := axisLine(points, values, 0)
		if len(pts) != 5 {
			t.Fatalf("duplicates must stay on the line: got %d points, want 5", len(pts))
		}
		for i, v := range vals {
			//edlint:ignore floateq values pass through axisLine unchanged; the test asserts exact identity
			if v != values[i] {
				t.Fatalf("value %d changed: %g != %g", i, v, values[i])
			}
		}
	})
	t.Run("single-distinct-value-parameter", func(t *testing.T) {
		// Parameter 1 never varies: every point sits at its minimum, so
		// the parameter-0 axis line is the whole set.
		points := []measurement.Point{{2, 64}, {4, 64}, {8, 64}, {16, 64}, {32, 64}}
		values := []float64{1, 2, 3, 4, 5}
		pts, _ := axisLine(points, values, 0)
		if len(pts) != len(points) {
			t.Fatalf("axis line of a fixed parameter must keep all points: got %d, want %d", len(pts), len(points))
		}
		// The parameter-1 line keeps only the parameter-0 minimum.
		pts, _ = axisLine(points, values, 1)
		if len(pts) != 1 {
			t.Fatalf("line through the constant parameter: got %d points, want 1", len(pts))
		}
	})
}
