package modeling_test

import (
	"fmt"

	"extradeep/internal/measurement"
	"extradeep/internal/modeling"
)

// ExampleFit models noise-free measurements that follow T(p) = 10 + 2·p
// and extrapolates to an unmeasured scale.
func ExampleFit() {
	points := []measurement.Point{{2}, {4}, {8}, {16}, {32}}
	values := []float64{14, 18, 26, 42, 74}
	model, err := modeling.Fit(points, values, modeling.DefaultOptions())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("T(p) = %s\n", model.Function)
	fmt.Printf("T(64) = %.0f\n", model.Predict(64))
	// Output:
	// T(p) = 10 + 2*x1
	// T(64) = 138
}

// ExampleFitSeries shows the repetition-aware entry point: the median over
// repeated measurements per point feeds the fit.
func ExampleFitSeries() {
	var s measurement.Series
	s.Add(measurement.Point{2}, 20.1, 19.9, 20.0)
	s.Add(measurement.Point{4}, 20.0, 20.2, 19.8)
	s.Add(measurement.Point{8}, 20.1, 20.0, 19.9)
	s.Add(measurement.Point{16}, 19.9, 20.1, 20.0)
	s.Add(measurement.Point{32}, 20.0, 20.0, 20.0)
	model, err := modeling.FitSeries(&s, modeling.DefaultOptions())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("T(p) = %s\n", model.Function)
	// Output:
	// T(p) = 20
}
