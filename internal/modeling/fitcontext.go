package modeling

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"extradeep/internal/mathutil"
	"extradeep/internal/measurement"
	"extradeep/internal/pmnf"
)

// This file is the design-matrix engine: the fast fit path that the
// whole hypothesis search runs on. A fitContext is built once per
// (points, values, Options) task. It evaluates every basis factor once
// per configuration into cached columns (pmnf.ColumnSet) and assembles
// each hypothesis's normal equations — full-data and per
// leave-one-out fold — directly from those columns, replaying the exact
// floating-point operation order of the reference direct-solve path
// (oracle.go). Replaying rather than algebraically updating keeps model
// selection bit-identical to the oracle: same accepted hypothesis set,
// same CV-SMAPE bits, same winning hypothesis, same coefficients. What
// the engine removes is all redundant work — the repeated math.Pow/log
// basis evaluations (once per hypothesis per fold before; once per task
// now) and every per-fold design-matrix and solver allocation.

// errUnderDetermined mirrors the oracle's rejection of folds with fewer
// rows than coefficients.
var errUnderDetermined = errors.New("modeling: under-determined fold")

// errNonFiniteBasis mirrors the oracle's rejection of hypotheses whose
// basis is undefined (NaN/Inf) at a measurement point.
var errNonFiniteBasis = errors.New("modeling: basis function undefined at a measurement point")

// errNegativeCoefficient mirrors the oracle's NonNegativeCoefficients
// rejection.
var errNegativeCoefficient = errors.New("modeling: negative term coefficient rejected")

// cvMode selects the engine's leave-one-out cross-validation
// implementation.
type cvMode int

const (
	// cvReplay replays every fold's normal-equation solve from the cached
	// basis columns — bit-identical to the oracle, including the
	// per-fold coefficient-sign and singularity rejections. The default.
	cvReplay cvMode = iota
	// cvHat derives all leave-one-out residuals from the single full-data
	// solve via the hat-matrix diagonal (e_loo = e/(1−h_ii)). It is
	// O(n·k²) instead of O(n²·k²) and mathematically equivalent on
	// well-conditioned data, but it is not bit-identical and cannot
	// reproduce the per-fold coefficient-sign rejection (it only sees the
	// full-data coefficients). It stays behind this internal switch until
	// a caller appears whose fits are large enough to need it (the
	// planned edserve incremental refit path) and whose selection
	// contract tolerates the relaxation; tests pin its numerical
	// agreement with cvReplay.
	cvHat
)

// fitContext is the per-task state of the design-matrix engine. It is
// confined to one goroutine: the column cache fills lazily and every
// scratch buffer is reused across the hypothesis space.
type fitContext struct {
	points []measurement.Point
	values []float64
	opts   Options
	cols   *pmnf.ColumnSet
	mode   cvMode

	// Scratch reused across hypotheses and folds. termCols holds the
	// current hypothesis's basis columns and facCols the per-term factor
	// column references they were assembled from (for the fold-prediction
	// replay); nonFinite the rows where any term column is NaN/Inf;
	// xtx/xty the accumulated normal equations; ws the solver workspace;
	// preds/acts the fold predictions; fullPreds the full-data predictions
	// of a candidate; inv the (XᵀX)⁻¹ columns and unitB the unit
	// right-hand side of the hat-matrix path. prepared/lastTerms memoize
	// the most recently prepared hypothesis: selectBest cross-validates
	// and then refits the same hypothesis back to back, and the second
	// prepare would redo identical work.
	termCols  [][]float64
	facCols   [][][]float64
	prepared  bool
	lastTerms []pmnf.Term
	nonFinite []int
	xtx       [][]float64
	xty       []float64
	xrow      []float64
	ws        mathutil.SolveWorkspace
	preds     []float64
	acts      []float64
	fullPreds []float64
	inv       [][]float64
	unitB     []float64
}

// The fit tasks of one campaign overwhelmingly share their measurement
// points (one task per kernel × metric over the same configurations), so
// the basis columns — which depend only on the points and the exponent
// sets — are shared process-wide: the first task for a (points, shapes)
// signature evaluates every shape column eagerly into an immutable map,
// later tasks seed their ColumnSet with it read-only. Values are pure
// functions of the key, so a racing double-compute stores bit-identical
// columns and determinism is unaffected. The cache is capped; beyond the
// cap tasks simply fall back to private lazy columns.
var (
	basisCache sync.Map // basisSig → *basisEntry
	basisCount atomic.Int32
)

const basisCacheCap = 256

// basisSig is the shared-basis cache key: a two-lane FNV-1a content
// hash over the row bits and exponent signature, plus the row/arity
// counts. It replaced a canonical-string key that built a multi-kilobyte
// string per fit task — the single largest allocation on the fit path
// (allocloop's first repo finding). The hash itself is not trusted for
// equality: lookups verify the stored content byte-for-byte (see
// basisEntry.matches), so even a 128-bit collision cannot cross-seed
// columns between tasks — it only degrades the task to private columns.
type basisSig struct {
	h1, h2   uint64
	n, arity int
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// basisSignature hashes the row contents and the exponent sets into a
// basisSig, allocation-free.
func basisSignature(rows [][]float64, opts Options) basisSig {
	h1 := uint64(fnvOffset64)
	h2 := uint64(fnvOffset64) ^ 0x9e3779b97f4a7c15
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			b := uint64(byte(v >> s))
			h1 = (h1 ^ b) * fnvPrime64
			h2 = (h2 ^ b) * fnvPrime64
		}
	}
	for _, row := range rows {
		for _, v := range row {
			mix(math.Float64bits(v))
		}
		mix(uint64(len(row)))
	}
	for _, e := range opts.PolyExponents {
		mix(math.Float64bits(e))
	}
	mix(uint64(len(opts.PolyExponents)))
	for _, e := range opts.LogExponents {
		mix(uint64(e))
	}
	arity := 0
	if len(rows) > 0 {
		arity = len(rows[0])
	}
	return basisSig{h1: h1, h2: h2, n: len(rows), arity: arity}
}

// basisEntry pairs the published factor columns with a verbatim copy of
// the keyed content, so lookups verify real equality instead of trusting
// the hash.
type basisEntry struct {
	flat []float64 // row-major copy of the keyed rows
	lens []int     // per-row arity (points are uniform, but verify anyway)
	poly []float64
	logE []int
	cols map[pmnf.Factor][]float64
}

// matches reports whether the entry was keyed by exactly these rows and
// exponent sets, comparing float content bit for bit.
func (e *basisEntry) matches(rows [][]float64, opts Options) bool {
	if len(e.lens) != len(rows) || len(e.poly) != len(opts.PolyExponents) || len(e.logE) != len(opts.LogExponents) {
		return false
	}
	k := 0
	for i, row := range rows {
		if e.lens[i] != len(row) {
			return false
		}
		for _, v := range row {
			if math.Float64bits(e.flat[k]) != math.Float64bits(v) {
				return false
			}
			k++
		}
	}
	for i, v := range opts.PolyExponents {
		if math.Float64bits(e.poly[i]) != math.Float64bits(v) {
			return false
		}
	}
	for i, v := range opts.LogExponents {
		if e.logE[i] != v {
			return false
		}
	}
	return true
}

// newBasisEntry copies the keyed content (a one-time cost per cache
// entry, bounded by basisCacheCap) alongside the computed columns.
func newBasisEntry(rows [][]float64, opts Options, cols map[pmnf.Factor][]float64) *basisEntry {
	total := 0
	for _, row := range rows {
		total += len(row)
	}
	e := &basisEntry{
		flat: make([]float64, 0, total),
		lens: make([]int, len(rows)),
		poly: append([]float64(nil), opts.PolyExponents...),
		logE: append([]int(nil), opts.LogExponents...),
		cols: cols,
	}
	for i, row := range rows {
		e.lens[i] = len(row)
		e.flat = append(e.flat, row...)
	}
	return e
}

// sharedBasis returns the immutable shared factor columns for the given
// rows and options, computing and publishing them on first use. It
// returns nil when the cache is full or on the (astronomically unlikely)
// hash collision, in which case the task falls back to private lazy
// columns — a pure slowdown, never a correctness change, since columns
// are pure functions of the rows.
func sharedBasis(rows [][]float64, opts Options) map[pmnf.Factor][]float64 {
	sig := basisSignature(rows, opts)
	if v, ok := basisCache.Load(sig); ok {
		e := v.(*basisEntry)
		if e.matches(rows, opts) {
			return e.cols
		}
		return nil
	}
	if basisCount.Load() >= basisCacheCap {
		return nil
	}
	cs := pmnf.NewColumnSet(rows)
	arity := len(rows[0])
	shared := make(map[pmnf.Factor][]float64)
	for _, s := range shapeSet(opts) {
		for p := 0; p < arity; p++ {
			f := s
			f.Param = p
			shared[f] = cs.FactorColumn(f)
		}
	}
	if _, loaded := basisCache.LoadOrStore(sig, newBasisEntry(rows, opts, shared)); !loaded {
		basisCount.Add(1)
	}
	return shared
}

// newFitContext builds the engine state for one fit task. opts must
// already be normalized and (points, values) validated.
func newFitContext(points []measurement.Point, values []float64, opts Options) *fitContext {
	rows := make([][]float64, len(points))
	for i, p := range points {
		rows[i] = p
	}
	return &fitContext{
		points: points,
		values: values,
		opts:   opts,
		cols:   pmnf.NewColumnSetShared(rows, sharedBasis(rows, opts)),
	}
}

// prepare caches the basis columns of h's terms — and the factor columns
// they are built from — and records the rows at which any term column is
// non-finite. A repeated call for the hypothesis just prepared is a no-op:
// selectBest cross-validates and then refits the same hypothesis, and the
// memo spares the second column assembly.
func (fc *fitContext) prepare(h hypothesis) {
	k := len(h.terms)
	if fc.prepared && k == len(fc.lastTerms) && (k == 0 || &h.terms[0] == &fc.lastTerms[0]) {
		return
	}
	fc.prepared = true
	fc.lastTerms = h.terms
	for len(fc.termCols) < k {
		fc.termCols = append(fc.termCols, nil)
	}
	for len(fc.facCols) < k {
		fc.facCols = append(fc.facCols, nil)
	}
	fc.nonFinite = fc.nonFinite[:0]
	for c, t := range h.terms {
		facs := fc.facCols[c][:0]
		for _, f := range t.Factors {
			facs = append(facs, fc.cols.FactorColumn(f))
		}
		fc.facCols[c] = facs
		fc.termCols[c] = pmnf.TermProduct(len(fc.points), facs, fc.termCols[c])
	}
	for r := 0; r < len(fc.points); r++ {
		for c := 0; c < k; c++ {
			if v := fc.termCols[c][r]; math.IsNaN(v) || math.IsInf(v, 0) {
				fc.nonFinite = append(fc.nonFinite, r)
				break
			}
		}
	}
}

// foldClean reports whether the design matrix of the fold leaving out row
// `leave` is fully finite — the oracle checks exactly the rows the fold
// fits on, so a single bad row poisons every fold except its own.
func (fc *fitContext) foldClean(leave int) bool {
	switch len(fc.nonFinite) {
	case 0:
		return true
	case 1:
		return fc.nonFinite[0] == leave
	default:
		return false
	}
}

// solveFold accumulates the normal equations XᵀX·c = Xᵀy over every row
// except `leave` (pass leave < 0 for the full-data fit) and solves them.
// The accumulation replays mathutil.LeastSquares's operand order over the
// cached columns — row-major, upper triangle, constant column first — so
// the solution is bit-identical to building the design matrix and solving
// directly. The returned slice aliases solver scratch; callers use it
// before the next solve.
func (fc *fitContext) solveFold(nTerms, leave int) ([]float64, error) {
	cols := nTerms + 1
	rows := len(fc.points)
	if leave >= 0 {
		rows--
	}
	if rows < cols {
		return nil, errUnderDetermined
	}
	for len(fc.xtx) < cols {
		fc.xtx = append(fc.xtx, nil)
	}
	for i := 0; i < cols; i++ {
		for len(fc.xtx[i]) < cols {
			fc.xtx[i] = append(fc.xtx[i], 0)
		}
	}
	for len(fc.xty) < cols {
		fc.xty = append(fc.xty, 0)
	}
	for i := 0; i < cols; i++ {
		fc.xty[i] = 0
		for j := 0; j < cols; j++ {
			fc.xtx[i][j] = 0
		}
	}
	for len(fc.xrow) < cols {
		fc.xrow = append(fc.xrow, 0)
	}
	xrow := fc.xrow[:cols]
	for r := 0; r < len(fc.points); r++ {
		if r == leave {
			continue
		}
		y := fc.values[r]
		xrow[0] = 1.0
		for i := 1; i < cols; i++ {
			xrow[i] = fc.termCols[i-1][r]
		}
		for i := 0; i < cols; i++ {
			xi := xrow[i]
			fc.xty[i] += xi * y
			row := fc.xtx[i]
			for j := i; j < cols; j++ {
				row[j] += xi * xrow[j]
			}
		}
	}
	for i := 0; i < cols; i++ {
		for j := 0; j < i; j++ {
			fc.xtx[i][j] = fc.xtx[j][i]
		}
	}
	return mathutil.SolveLinearSystemInto(fc.xtx[:cols], fc.xty[:cols], &fc.ws)
}

// checkSigns applies the NonNegativeCoefficients rejection to a solved
// coefficient vector, in the oracle's term order.
func (fc *fitContext) checkSigns(coefs []float64) error {
	if !fc.opts.NonNegativeCoefficients {
		return nil
	}
	for _, c := range coefs[1:] {
		if c < 0 {
			return errNegativeCoefficient
		}
	}
	return nil
}

// predictRow evaluates the model (coefs over the prepared hypothesis's
// terms) at row r, replaying pmnf.Function.Eval's operand order — the
// coefficient first, then each factor in term order — from the factor
// columns prepare stashed.
func (fc *fitContext) predictRow(h hypothesis, coefs []float64, r int) float64 {
	pred := coefs[0]
	for ti := range h.terms {
		tv := coefs[ti+1]
		for _, col := range fc.facCols[ti] {
			tv *= col[r]
		}
		pred += tv
	}
	return pred
}

// fitHypothesis fits h's coefficients on the full task data and returns
// the resulting function — bit-identical to the oracle's direct solve —
// or an error when the regression is degenerate.
func (fc *fitContext) fitHypothesis(h hypothesis) (*pmnf.Function, error) {
	fc.prepare(h)
	if len(fc.nonFinite) > 0 {
		return nil, errNonFiniteBasis
	}
	coefs, err := fc.solveFold(len(h.terms), -1)
	if err != nil {
		return nil, err
	}
	fn := &pmnf.Function{Constant: coefs[0], Terms: make([]pmnf.Term, 0, len(h.terms))}
	for i, term := range h.terms {
		c := coefs[i+1]
		if fc.opts.NonNegativeCoefficients && c < 0 {
			return nil, errNegativeCoefficient
		}
		fn.Terms = append(fn.Terms, pmnf.Term{Coefficient: c, Factors: term.Factors})
	}
	return fn, nil
}

// crossValidate computes the leave-one-out CV-SMAPE of hypothesis h.
// In cvReplay mode (the default) every fold's solve is replayed from the
// cached columns, preserving the oracle's per-fold singularity and
// coefficient-sign rejections bit for bit; cvHat derives the folds from
// the hat-matrix diagonal instead.
func (fc *fitContext) crossValidate(h hypothesis) (float64, bool) {
	fc.prepare(h)
	if fc.mode == cvHat {
		return fc.crossValidateHat(h)
	}
	n := len(fc.points)
	fc.preds = fc.preds[:0]
	fc.acts = fc.acts[:0]
	for leave := 0; leave < n; leave++ {
		if !fc.foldClean(leave) {
			return 0, false
		}
		coefs, err := fc.solveFold(len(h.terms), leave)
		if err != nil {
			return 0, false
		}
		if fc.checkSigns(coefs) != nil {
			return 0, false
		}
		fc.preds = append(fc.preds, fc.predictRow(h, coefs, leave))
		fc.acts = append(fc.acts, fc.values[leave])
	}
	return mathutil.SMAPE(fc.preds, fc.acts)
}

// crossValidateHat is the hat-matrix LOOCV path (cvHat): one full-data
// solve, (XᵀX)⁻¹ by k+1 unit solves, then every leave-one-out residual
// as e_i/(1−h_ii) with h_ii = x_iᵀ(XᵀX)⁻¹x_i. Folds whose leverage
// reaches 1 (the fold-singular analogue) reject the hypothesis, as does
// a negative full-data coefficient under NonNegativeCoefficients.
func (fc *fitContext) crossValidateHat(h hypothesis) (float64, bool) {
	if len(fc.nonFinite) > 0 {
		return 0, false
	}
	n := len(fc.points)
	k := len(h.terms) + 1
	if n-1 < k {
		return 0, false
	}
	coefs, err := fc.solveFold(len(h.terms), -1)
	if err != nil {
		return 0, false
	}
	if fc.checkSigns(coefs) != nil {
		return 0, false
	}
	// Keep the full-data solution and normal matrix: the unit solves
	// below reuse the solver scratch that coefs aliases.
	for len(fc.inv) < k {
		fc.inv = append(fc.inv, nil)
	}
	beta := append([]float64(nil), coefs[:k]...)
	for len(fc.unitB) < k {
		fc.unitB = append(fc.unitB, 0)
	}
	for col := 0; col < k; col++ {
		for i := 0; i < k; i++ {
			fc.unitB[i] = 0
		}
		fc.unitB[col] = 1
		sol, err := mathutil.SolveLinearSystemInto(fc.xtx[:k], fc.unitB[:k], &fc.ws)
		if err != nil {
			return 0, false
		}
		fc.inv[col] = append(fc.inv[col][:0], sol...)
	}
	fc.preds = fc.preds[:0]
	fc.acts = fc.acts[:0]
	row := make([]float64, k)
	for r := 0; r < n; r++ {
		row[0] = 1
		for c := 1; c < k; c++ {
			row[c] = fc.termCols[c-1][r]
		}
		fitted := 0.0
		for i := 0; i < k; i++ {
			fitted += row[i] * beta[i]
		}
		lev := 0.0
		for i := 0; i < k; i++ {
			vi := 0.0
			for j := 0; j < k; j++ {
				vi += fc.inv[i][j] * row[j]
			}
			lev += vi * row[i]
		}
		denom := 1 - lev
		if denom <= 1e-10 {
			return 0, false
		}
		resid := fc.values[r] - fitted
		fc.preds = append(fc.preds, fc.values[r]-resid/denom)
		fc.acts = append(fc.acts, fc.values[r])
	}
	return mathutil.SMAPE(fc.preds, fc.acts)
}

// ranker supplies the stage-1 cross-validation function of the sparse
// multi-parameter search: hypotheses rank on the axis line through the
// grid, so a sub-context with its own column cache is built for the line
// subset (the full context is reused when the search fell back to the
// complete point set).
func (fc *fitContext) ranker(points []measurement.Point, values []float64) func(hypothesis) (float64, bool) {
	if len(points) == len(fc.points) && len(points) > 0 && &points[0] == &fc.points[0] {
		return fc.crossValidate
	}
	sub := newFitContext(points, values, fc.opts)
	sub.mode = fc.mode
	return sub.crossValidate
}

// selectBest evaluates all hypotheses on the engine and returns the
// fitted model with the smallest cross-validated SMAPE (ties broken by
// fewer terms, then lower RSS), followed by the Occam preference among
// statistically indistinguishable candidates. The logic — and, through
// the replayed solves, every selection-relevant bit — matches the
// oracle's selectBestDirect.
func (fc *fitContext) selectBest(hyps []hypothesis) (*Model, error) {
	type candidate struct {
		fn    *pmnf.Function
		smape float64
		rss   float64
		terms int
	}
	n := len(fc.points)
	for len(fc.fullPreds) < n {
		fc.fullPreds = append(fc.fullPreds, 0)
	}
	cands := make([]candidate, 0, len(hyps))
	for _, h := range hyps {
		smape, ok := fc.crossValidate(h)
		if !ok {
			continue
		}
		fn, err := fc.fitHypothesis(h)
		if err != nil {
			continue
		}
		for i := 0; i < n; i++ {
			fc.fullPreds[i] = fc.cols.EvalFunction(fn, i)
		}
		rss, _ := mathutil.RSS(fc.fullPreds[:n], fc.values)
		cands = append(cands, candidate{fn: fn, smape: smape, rss: rss, terms: len(fn.Terms)})
	}
	if len(cands) == 0 {
		return nil, ErrNoHypothesis
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].smape < cands[j].smape {
			return true
		}
		if cands[i].smape > cands[j].smape {
			return false
		}
		if cands[i].terms != cands[j].terms {
			return cands[i].terms < cands[j].terms
		}
		return cands[i].rss < cands[j].rss
	})
	// Occam selection: hypotheses whose cross-validated SMAPE is within
	// the noise-level tolerance of the minimum are statistically
	// indistinguishable on the modeling points; among them the
	// slowest-growing one is preferred — a steep exponent that fits the
	// noise a hair better would explode under extrapolation, exactly the
	// failure mode empirical modeling must avoid. Two guard rails:
	// the pure constant may win only by having the smallest SMAPE
	// outright (flattening real growth through the tie-break would erase
	// the scaling signal the tool exists to find), and on noise-free data
	// the tolerance collapses to (nearly) zero so the best-fitting shape
	// wins unchanged.
	threshold := cands[0].smape + math.Max(0.05, 0.5*cands[0].smape)
	best := cands[0]
	for _, c := range cands[1:] {
		if c.smape > threshold {
			break // sorted by smape: all following are worse
		}
		if len(c.fn.Terms) == 0 {
			continue // never flatten to the constant via the tie-break
		}
		gc, gb := c.fn.Growth(), best.fn.Growth()
		if cmp := gc.Compare(gb); cmp < 0 || (cmp == 0 && c.terms < best.terms) {
			best = c
		}
	}

	preds := make([]float64, n)
	for i := 0; i < n; i++ {
		preds[i] = fc.cols.EvalFunction(best.fn, i)
	}
	r2, okR2 := mathutil.RSquared(preds, fc.values)
	if !okR2 {
		r2 = math.NaN()
	}
	// Relative residual spread for prediction intervals.
	rel := make([]float64, 0, len(preds))
	for i := range preds {
		if fc.values[i] != 0 {
			rel = append(rel, (preds[i]-fc.values[i])/fc.values[i])
		}
	}
	relStd, _ := mathutil.StdDev(rel)

	model := &Model{
		Function:       best.fn,
		SMAPE:          best.smape,
		RSS:            best.rss,
		R2:             r2,
		RelResidualStd: relStd,
		Points:         fc.points,
		Actual:         append([]float64(nil), fc.values...),
	}
	return model, nil
}

// Fitter is the exported handle on the design-matrix engine: the fit
// stage constructs one per fit task (validating the inputs up front) and
// runs the whole hypothesis search on it. A Fitter is single-use state
// bound to one goroutine; concurrent tasks each build their own.
type Fitter struct {
	fc *fitContext
}

// NewFitter validates one fit task's inputs and binds the design-matrix
// engine to them. The validation rules and errors are exactly Fit's.
func NewFitter(points []measurement.Point, values []float64, opts Options) (*Fitter, error) {
	opts = normalizeOptions(opts)
	if err := validateFitInputs(points, values, opts); err != nil {
		return nil, err
	}
	return &Fitter{fc: newFitContext(points, values, opts)}, nil
}

// NewSeriesFitter aggregates the series (median by default, mean with
// Options.UseMean) and binds the engine to the aggregated values.
func NewSeriesFitter(s *measurement.Series, opts Options) (*Fitter, error) {
	if s == nil {
		return nil, errors.New("modeling: nil series")
	}
	sorted := *s
	sorted.Sort()
	points := sorted.Points()
	values := make([]float64, len(points))
	for i, sm := range sorted.Samples {
		var v float64
		var ok bool
		if opts.UseMean {
			v, ok = sm.Mean()
		} else {
			v, ok = sm.Median()
		}
		if !ok {
			return nil, fmt.Errorf("modeling: sample at %s has no repetitions", sm.Point.Key())
		}
		values[i] = v
	}
	return NewFitter(points, values, opts)
}

// Fit runs the hypothesis search and model selection for the bound task.
// With the oracle flag set (EDFIT_ORACLE) the search runs on the
// reference direct-solve path instead; selection is bit-identical either
// way.
func (f *Fitter) Fit() (*Model, error) {
	fc := f.fc
	if forceOracle {
		return fitOracle(fc.points, fc.values, fc.opts)
	}
	arity := len(fc.points[0])
	var hyps []hypothesis
	if arity == 1 {
		hyps = hypothesesCached(arity, fc.opts)
	} else {
		// Multi-parameter sparse modeling: a full cross product of shape
		// combinations is quadratic in the (large) shape set and makes
		// model search orders of magnitude slower. Following Extra-P's
		// sparse-modeling approach, first evaluate single-parameter
		// hypotheses, then build combinations only from the best few
		// shapes per parameter.
		hyps = sparseHypotheses(arity, fc.points, fc.values, fc.opts, fc.ranker)
	}
	if len(hyps) == 0 {
		return nil, ErrNoHypothesis
	}
	return fc.selectBest(hyps)
}
