package modeling

import (
	"errors"
	"math"
	"os"
	"sort"

	"extradeep/internal/mathutil"
	"extradeep/internal/measurement"
	"extradeep/internal/pmnf"
)

// This file is the reference oracle: the pre-engine direct-solve fit
// path, kept verbatim so the design-matrix engine (fitcontext.go) has a
// frozen implementation to verify against. Every fit here re-evaluates
// the basis terms into a fresh design matrix and re-solves the
// least-squares system per hypothesis and per cross-validation fold —
// exactly what the engine replays from cached columns. The propcheck
// suite pins engine ≡ oracle selection (same winning hypothesis, same
// coefficient bits) over randomized inputs; EDFIT_ORACLE=1 routes a
// whole run through this path for end-to-end cross-checks.

// forceOracle routes every Fitter.Fit through the oracle. It is an
// internal verification knob: set via the EDFIT_ORACLE environment
// variable (read once at startup) for a whole process, or flipped
// directly by in-package tests. Not part of the public API.
var forceOracle = os.Getenv("EDFIT_ORACLE") != ""

// fitOracle is the oracle's Fit: the same hypothesis generation as the
// engine (sparse ranking included, via the oracle's cross-validation),
// selected by the direct-solve selectBestDirect. Inputs must already be
// validated and opts normalized.
func fitOracle(points []measurement.Point, values []float64, opts Options) (*Model, error) {
	arity := len(points[0])
	var hyps []hypothesis
	if arity == 1 {
		hyps = hypothesesCached(arity, opts)
	} else {
		hyps = sparseHypotheses(arity, points, values, opts, func(pts []measurement.Point, vals []float64) func(hypothesis) (float64, bool) {
			return func(h hypothesis) (float64, bool) {
				return crossValidateDirect(h, pts, vals, opts)
			}
		})
	}
	if len(hyps) == 0 {
		return nil, ErrNoHypothesis
	}
	return selectBestDirect(points, values, hyps, opts)
}

// designMatrix builds the regression design matrix for a hypothesis: the
// first column is the constant basis, followed by one column per term.
func designMatrix(h hypothesis, points []measurement.Point) [][]float64 {
	x := make([][]float64, len(points))
	for r, p := range points {
		row := make([]float64, 1+len(h.terms))
		row[0] = 1
		vals := []float64(p)
		for c, term := range h.terms {
			row[c+1] = term.EvalBasis(vals)
		}
		x[r] = row
	}
	return x
}

// fitHypothesisDirect fits h's coefficients on (points, values) and
// returns the resulting function, or an error when the regression is
// degenerate.
func fitHypothesisDirect(h hypothesis, points []measurement.Point, values []float64, opts Options) (*pmnf.Function, error) {
	x := designMatrix(h, points)
	for _, row := range x {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, errors.New("modeling: basis function undefined at a measurement point")
			}
		}
	}
	coef, err := mathutil.LeastSquares(x, values)
	if err != nil {
		return nil, err
	}
	fn := &pmnf.Function{Constant: coef[0]}
	for i, term := range h.terms {
		c := coef[i+1]
		if opts.NonNegativeCoefficients && c < 0 {
			return nil, errors.New("modeling: negative term coefficient rejected")
		}
		fn.Terms = append(fn.Terms, pmnf.Term{Coefficient: c, Factors: term.Factors})
	}
	return fn, nil
}

// crossValidateDirect computes the leave-one-out SMAPE of hypothesis h:
// for every point the model is refitted without it and asked to predict
// it.
func crossValidateDirect(h hypothesis, points []measurement.Point, values []float64, opts Options) (float64, bool) {
	n := len(points)
	preds := make([]float64, 0, n)
	acts := make([]float64, 0, n)
	subP := make([]measurement.Point, 0, n-1)
	subV := make([]float64, 0, n-1)
	for leave := 0; leave < n; leave++ {
		subP = subP[:0]
		subV = subV[:0]
		for i := 0; i < n; i++ {
			if i == leave {
				continue
			}
			subP = append(subP, points[i])
			subV = append(subV, values[i])
		}
		fn, err := fitHypothesisDirect(h, subP, subV, opts)
		if err != nil {
			return 0, false
		}
		preds = append(preds, fn.EvalAt(points[leave]))
		acts = append(acts, values[leave])
	}
	s, ok := mathutil.SMAPE(preds, acts)
	return s, ok
}

// selectBestDirect evaluates all hypotheses and returns the fitted model
// with the smallest cross-validated SMAPE (ties broken by fewer terms,
// then lower RSS).
func selectBestDirect(points []measurement.Point, values []float64, hyps []hypothesis, opts Options) (*Model, error) {
	type candidate struct {
		fn    *pmnf.Function
		smape float64
		rss   float64
		terms int
	}
	var cands []candidate
	for _, h := range hyps {
		smape, ok := crossValidateDirect(h, points, values, opts)
		if !ok {
			continue
		}
		fn, err := fitHypothesisDirect(h, points, values, opts)
		if err != nil {
			continue
		}
		preds := make([]float64, len(points))
		for i, p := range points {
			preds[i] = fn.EvalAt(p)
		}
		rss, _ := mathutil.RSS(preds, values)
		cands = append(cands, candidate{fn: fn, smape: smape, rss: rss, terms: len(fn.Terms)})
	}
	if len(cands) == 0 {
		return nil, ErrNoHypothesis
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].smape < cands[j].smape {
			return true
		}
		if cands[i].smape > cands[j].smape {
			return false
		}
		if cands[i].terms != cands[j].terms {
			return cands[i].terms < cands[j].terms
		}
		return cands[i].rss < cands[j].rss
	})
	// Occam selection — see fitContext.selectBest for the rationale; the
	// two implementations must stay in lockstep.
	threshold := cands[0].smape + math.Max(0.05, 0.5*cands[0].smape)
	best := cands[0]
	for _, c := range cands[1:] {
		if c.smape > threshold {
			break // sorted by smape: all following are worse
		}
		if len(c.fn.Terms) == 0 {
			continue // never flatten to the constant via the tie-break
		}
		gc, gb := c.fn.Growth(), best.fn.Growth()
		if cmp := gc.Compare(gb); cmp < 0 || (cmp == 0 && c.terms < best.terms) {
			best = c
		}
	}

	preds := make([]float64, len(points))
	for i, p := range points {
		preds[i] = best.fn.EvalAt(p)
	}
	r2, okR2 := mathutil.RSquared(preds, values)
	if !okR2 {
		r2 = math.NaN()
	}
	// Relative residual spread for prediction intervals.
	var rel []float64
	for i := range preds {
		if values[i] != 0 {
			rel = append(rel, (preds[i]-values[i])/values[i])
		}
	}
	relStd, _ := mathutil.StdDev(rel)

	model := &Model{
		Function:       best.fn,
		SMAPE:          best.smape,
		RSS:            best.rss,
		R2:             r2,
		RelResidualStd: relStd,
		Points:         points,
		Actual:         append([]float64(nil), values...),
	}
	return model, nil
}
