package modeling_test

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"extradeep/internal/measurement"
	"extradeep/internal/modeling"
	"extradeep/internal/propcheck"
)

// fitCase describes a noise-free single-term PMNF dataset y = a + c·x^e
// over six power-of-two points, plus a positive scale s used by the
// equivariance checks. Restricting to polynomial shapes keeps x→c·x
// inside the hypothesis space (log² shapes do not scale-close).
type fitCase struct {
	a, c, e float64
	s       float64
}

var fitXs = []float64{2, 4, 8, 16, 32, 64}

func (c fitCase) data() ([]measurement.Point, []float64) {
	points := make([]measurement.Point, len(fitXs))
	values := make([]float64, len(fitXs))
	for i, x := range fitXs {
		points[i] = measurement.Point{x}
		values[i] = c.a + c.c*math.Pow(x, c.e)
	}
	return points, values
}

func fitCaseGen() propcheck.Gen[fitCase] {
	exps := []float64{0, 0.5, 1, 1.5, 2}
	return propcheck.Gen[fitCase]{
		Generate: func(r *propcheck.Rand) fitCase {
			return fitCase{
				a: r.Float64Range(0, 100),
				c: r.Float64Range(0.1, 10),
				e: exps[r.Intn(len(exps))],
				s: float64(r.IntRange(2, 8)),
			}
		},
		Describe: func(c fitCase) string {
			return fmt.Sprintf("{y = %g + %g·x^%g, s=%g}", c.a, c.c, c.e, c.s)
		},
	}
}

func relClose(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)) }

// TestPropFitScaleEquivariantInY: fitting c·y instead of y scales every
// prediction by c — SMAPE selection (Eq. 5) is scale-invariant in the
// measured metric, so changing units cannot change the chosen model's
// predictions relative to the data.
func TestPropFitScaleEquivariantInY(t *testing.T) {
	propcheck.Check(t, fitCaseGen(), func(c fitCase) error {
		points, values := c.data()
		scaled := make([]float64, len(values))
		for i, v := range values {
			scaled[i] = c.s * v
		}
		m1, err := modeling.Fit(points, values, modeling.DefaultOptions())
		if err != nil {
			return fmt.Errorf("fitting y: %w", err)
		}
		m2, err := modeling.Fit(points, scaled, modeling.DefaultOptions())
		if err != nil {
			return fmt.Errorf("fitting s·y: %w", err)
		}
		for _, p := range points {
			want := c.s * m1.Predict(p...)
			got := m2.Predict(p...)
			if !relClose(want, got, 1e-3) {
				return fmt.Errorf("at x=%g: s·predict(y-fit)=%g but predict(s·y-fit)=%g", p[0], want, got)
			}
		}
		return nil
	})
}

// TestPropFitScaleEquivariantInX: rescaling the parameter axis x→s·x on
// noise-free polynomial data leaves the fit exact — predictions at the
// scaled points still reproduce the observations.
func TestPropFitScaleEquivariantInX(t *testing.T) {
	propcheck.Check(t, fitCaseGen(), func(c fitCase) error {
		points, values := c.data()
		scaledPts := make([]measurement.Point, len(points))
		for i, p := range points {
			scaledPts[i] = measurement.Point{c.s * p[0]}
		}
		m, err := modeling.Fit(scaledPts, values, modeling.DefaultOptions())
		if err != nil {
			return fmt.Errorf("fitting on scaled axis: %w", err)
		}
		for i, p := range scaledPts {
			got := m.Predict(p...)
			if !relClose(values[i], got, 1e-3) {
				return fmt.Errorf("at x=%g: observed %g but model predicts %g", p[0], values[i], got)
			}
		}
		return nil
	})
}

// TestPropRefitOnOwnPredictionRecovers: feeding a model its own
// predictions as observations yields a model with the same predictions —
// fitting is a projection (idempotent on its own output).
func TestPropRefitOnOwnPredictionRecovers(t *testing.T) {
	propcheck.Check(t, fitCaseGen(), func(c fitCase) error {
		points, values := c.data()
		m1, err := modeling.Fit(points, values, modeling.DefaultOptions())
		if err != nil {
			return fmt.Errorf("first fit: %w", err)
		}
		predicted := make([]float64, len(points))
		for i, p := range points {
			predicted[i] = m1.Predict(p...)
		}
		m2, err := modeling.Fit(points, predicted, modeling.DefaultOptions())
		if err != nil {
			return fmt.Errorf("refit on own prediction: %w", err)
		}
		for i, p := range points {
			if !relClose(predicted[i], m2.Predict(p...), 1e-3) {
				return fmt.Errorf("at x=%g: refit predicts %g, want %g", p[0], m2.Predict(p...), predicted[i])
			}
		}
		return nil
	})
}

// TestPropFitDeterministicUnderConcurrency: concurrent Fit calls on the
// same data select bit-identical models — the sync.Map hypothesis caches
// must not make model selection depend on scheduling or worker count.
func TestPropFitDeterministicUnderConcurrency(t *testing.T) {
	propcheck.CheckConfig(t, propcheck.Config{Iterations: 25}, fitCaseGen(), func(c fitCase) error {
		points, values := c.data()
		const workers = 8
		results := make([]*modeling.Model, workers)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				results[w], errs[w] = modeling.Fit(points, values, modeling.DefaultOptions())
			}(w)
		}
		wg.Wait()
		for w := 1; w < workers; w++ {
			if errs[w] != nil || errs[0] != nil {
				return fmt.Errorf("worker errors: %v, %v", errs[0], errs[w])
			}
			if results[w].Function.String() != results[0].Function.String() {
				return fmt.Errorf("worker %d selected %q, worker 0 selected %q",
					w, results[w].Function.String(), results[0].Function.String())
			}
			//edlint:ignore floateq determinism: identical inputs must yield bit-identical SMAPE regardless of scheduling
			if results[w].SMAPE != results[0].SMAPE {
				return fmt.Errorf("worker %d SMAPE %v differs from worker 0 SMAPE %v",
					w, results[w].SMAPE, results[0].SMAPE)
			}
		}
		return nil
	})
}
