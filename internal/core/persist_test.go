package core

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"extradeep/internal/epoch"
	"extradeep/internal/measurement"
)

func TestSaveLoadModelsRoundTrip(t *testing.T) {
	res, err := RunCampaign(testCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "models.json")
	if err := SaveModels(path, res.Models); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModels(path)
	if err != nil {
		t.Fatal(err)
	}
	// Application models predict identically after the round trip.
	for p, orig := range res.Models.App {
		got := loaded.App[p]
		if got == nil {
			t.Fatalf("app model %q lost", p)
		}
		for _, x := range []float64{2, 10, 64, 128} {
			a, b := orig.Predict(x), got.Predict(x)
			if math.Abs(a-b) > 1e-12*(1+math.Abs(a)) {
				t.Fatalf("%q at %v: %v vs %v", p, x, a, b)
			}
		}
		//edlint:ignore floateq persistence round-trip must be lossless, so exact equality is the property under test
		if got.SMAPE != orig.SMAPE || got.R2 != orig.R2 {
			t.Errorf("%q: quality stats lost", p)
		}
	}
	// Kernel model counts survive.
	if loaded.KernelCount() != res.Models.KernelCount() {
		t.Errorf("kernel models: %d vs %d", loaded.KernelCount(), res.Models.KernelCount())
	}
	// Confidence intervals still work (need Points + RelResidualStd).
	app := loaded.App[epoch.AppPath]
	lo, hi := app.PredictInterval(0.95, 64)
	olo, ohi := res.Models.App[epoch.AppPath].PredictInterval(0.95, 64)
	if math.Abs(lo-olo) > 1e-9 || math.Abs(hi-ohi) > 1e-9 {
		t.Errorf("CI changed: [%v,%v] vs [%v,%v]", lo, hi, olo, ohi)
	}
}

func TestSaveModelsNil(t *testing.T) {
	if err := SaveModels(filepath.Join(t.TempDir(), "m.json"), nil); err == nil {
		t.Error("nil model set accepted")
	}
}

func TestLoadModelsMissingFile(t *testing.T) {
	if _, err := LoadModels(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadModelsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModels(path); err == nil {
		t.Error("corrupt file accepted")
	}
}

func TestLoadModelsWrongVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v99.json")
	if err := os.WriteFile(path, []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModels(path); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestLoadModelsMissingFunction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nofn.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"app":{"App":{}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModels(path); err == nil {
		t.Error("model without function accepted")
	}
}

func TestSavedModelJSONShape(t *testing.T) {
	// The multi-parameter grid model also round-trips (factors carry
	// parameter indices).
	res, err := RunGridCampaign(testGridCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "grid.json")
	if err := SaveModels(path, res.Models); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModels(path)
	if err != nil {
		t.Fatal(err)
	}
	orig := res.Models.App[epoch.AppPath]
	got := loaded.App[epoch.AppPath]
	pt := measurement.Point{16, 128}
	if math.Abs(orig.Function.EvalAt(pt)-got.Function.EvalAt(pt)) > 1e-12 {
		t.Error("grid model changed by round trip")
	}
}
