package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"

	"extradeep/internal/measurement"
	"extradeep/internal/modeling"
	"extradeep/internal/pmnf"
)

// modelFileVersion identifies the persisted model format.
const modelFileVersion = 1

// savedModel is the serialized form of one fitted model.
type savedModel struct {
	Function *pmnf.Function `json:"function"`
	SMAPE    float64        `json:"smape"`
	RSS      float64        `json:"rss"`
	// R2 is null for models whose data had no variance (R² undefined).
	R2             *float64            `json:"r2"`
	RelResidualStd float64             `json:"rel_residual_std"`
	Points         []measurement.Point `json:"points"`
	Actual         []float64           `json:"actual"`
}

func toSaved(m *modeling.Model) savedModel {
	s := savedModel{
		Function:       m.Function,
		SMAPE:          m.SMAPE,
		RSS:            m.RSS,
		RelResidualStd: m.RelResidualStd,
		Points:         m.Points,
		Actual:         m.Actual,
	}
	if !math.IsNaN(m.R2) {
		r2 := m.R2
		s.R2 = &r2
	}
	return s
}

func fromSaved(s savedModel) (*modeling.Model, error) {
	if s.Function == nil {
		return nil, errors.New("core: saved model without function")
	}
	r2 := math.NaN()
	if s.R2 != nil {
		r2 = *s.R2
	}
	return &modeling.Model{
		Function:       s.Function,
		SMAPE:          s.SMAPE,
		RSS:            s.RSS,
		R2:             r2,
		RelResidualStd: s.RelResidualStd,
		Points:         s.Points,
		Actual:         s.Actual,
	}, nil
}

// modelFile is the on-disk layout of a model set.
type modelFile struct {
	Version int `json:"version"`
	// App maps application callpaths to models.
	App map[string]savedModel `json:"app"`
	// Kernel maps metric → callpath → model.
	Kernel map[measurement.Metric]map[string]savedModel `json:"kernel"`
}

// EncodeModels canonically serializes a model set into the persisted
// model-file JSON (sorted keys via encoding/json's map ordering, stable
// field order), so two identical model sets always encode to identical
// bytes. SaveModels writes exactly these bytes; edserve's /models
// endpoint returns them, which is what makes API-path versus batch-path
// fit parity byte-comparable.
func EncodeModels(ms *ModelSet) ([]byte, error) {
	if ms == nil {
		return nil, errors.New("core: nil model set")
	}
	mf := modelFile{
		Version: modelFileVersion,
		App:     make(map[string]savedModel, len(ms.App)),
		Kernel:  make(map[measurement.Metric]map[string]savedModel, len(ms.Kernel)),
	}
	for path, m := range ms.App {
		mf.App[path] = toSaved(m)
	}
	for metric, byPath := range ms.Kernel {
		dst := make(map[string]savedModel, len(byPath))
		for path, m := range byPath {
			dst[path] = toSaved(m)
		}
		mf.Kernel[metric] = dst
	}
	data, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("core: encoding models: %w", err)
	}
	return data, nil
}

// SaveModels writes a model set to a JSON file, so an expensive modeling
// campaign's results can be reused for predictions without re-profiling.
func SaveModels(path string, ms *ModelSet) error {
	data, err := EncodeModels(ms)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("core: writing models: %w", err)
	}
	return nil
}

// LoadModels reads a model set previously written by SaveModels.
func LoadModels(path string) (*ModelSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: reading models: %w", err)
	}
	var mf modelFile
	if err := json.Unmarshal(data, &mf); err != nil {
		return nil, fmt.Errorf("core: decoding models: %w", err)
	}
	if mf.Version != modelFileVersion {
		return nil, fmt.Errorf("core: unsupported model-file version %d (want %d)", mf.Version, modelFileVersion)
	}
	ms := &ModelSet{
		App:    make(map[string]*modeling.Model, len(mf.App)),
		Kernel: make(map[measurement.Metric]map[string]*modeling.Model, len(mf.Kernel)),
	}
	for p, s := range mf.App {
		m, err := fromSaved(s)
		if err != nil {
			return nil, fmt.Errorf("core: app model %q: %w", p, err)
		}
		ms.App[p] = m
	}
	for metric, byPath := range mf.Kernel {
		dst := make(map[string]*modeling.Model, len(byPath))
		for p, s := range byPath {
			m, err := fromSaved(s)
			if err != nil {
				return nil, fmt.Errorf("core: kernel model %q/%q: %w", metric, p, err)
			}
			dst[p] = m
		}
		ms.Kernel[metric] = dst
	}
	return ms, nil
}
