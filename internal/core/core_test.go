package core

import (
	"os"
	"testing"

	"extradeep/internal/aggregate"
	"extradeep/internal/epoch"
	"extradeep/internal/mathutil"
	"extradeep/internal/measurement"
	"extradeep/internal/modeling"
	"extradeep/internal/pipeline"
	"extradeep/internal/profile"
	"extradeep/internal/resilience"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

// testCampaign returns a small CIFAR-10 campaign on DEEP; cheap enough for
// unit tests (≈0.1 s).
func testCampaign(t *testing.T) Campaign {
	t.Helper()
	b, err := engine.ByName("cifar10")
	if err != nil {
		t.Fatal(err)
	}
	return Campaign{
		Benchmark: b,
		Config: engine.RunConfig{
			System:      hardware.DEEP(),
			Strategy:    parallel.DataParallel{FusionBuckets: 4},
			WeakScaling: true,
			Seed:        7,
			SampleRanks: 4,
		},
		ModelingRanks: []int{2, 4, 6, 8, 10},
		EvalRanks:     []int{16, 32, 64},
		Reps:          5, // the paper's repetition count
	}
}

func TestRunCampaignEndToEnd(t *testing.T) {
	res, err := RunCampaign(testCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Models.App[epoch.AppPath]
	if m == nil {
		t.Fatal("no application model")
	}
	// Model accuracy at the modeling points: the paper reports 0.1–1.2%;
	// the simulated run-to-run noise (σ up to ≈8% of which a median of 5
	// repetitions keeps ≈4%) makes individual points scatter more, so
	// bound each point loosely and the median tightly.
	var errs []float64
	for _, ranks := range []int{2, 4, 6, 8, 10} {
		e, ok := res.PercentError(epoch.AppPath, ranks)
		if !ok {
			t.Fatalf("no error at %d ranks", ranks)
		}
		if e > 10 {
			t.Errorf("model error at %d ranks = %.2f%%, want <10%%", ranks, e)
		}
		errs = append(errs, e)
	}
	if med, _ := mathutil.Median(errs); med > 4 {
		t.Errorf("median model error = %.2f%%, want <4%%", med)
	}
	// Predictive power: error at 64 ranks should stay under ~30% (the
	// paper's worst case is 28.8%).
	if e, ok := res.PercentError(epoch.AppPath, 64); !ok || e > 30 {
		t.Errorf("prediction error at 64 ranks = %.2f%% (ok=%v)", e, ok)
	}
}

func TestRunCampaignWeakScalingGrowth(t *testing.T) {
	res, err := RunCampaign(testCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	// Under weak scaling the measured training time per epoch grows with
	// the rank count (the case study's central observation).
	small, _ := res.ActualMedian(epoch.AppPath, 2)
	large, _ := res.ActualMedian(epoch.AppPath, 64)
	if large <= small {
		t.Errorf("epoch time should grow: %v at 2 ranks vs %v at 64", small, large)
	}
	// And communication is the growing part.
	c2, _ := res.ActualMedian(epoch.CommPath, 2)
	c64, _ := res.ActualMedian(epoch.CommPath, 64)
	if c64 <= 2*c2 {
		t.Errorf("communication should grow strongly: %v → %v", c2, c64)
	}
}

func TestRunCampaignProducesKernelModels(t *testing.T) {
	res, err := RunCampaign(testCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Models.KernelCount() < 20 {
		t.Errorf("kernel models = %d, want ≥20", res.Models.KernelCount())
	}
	// Time and visits metrics must both be modeled.
	if len(res.Models.Kernel[measurement.MetricTime]) == 0 {
		t.Error("no time models")
	}
	if len(res.Models.Kernel[measurement.MetricVisits]) == 0 {
		t.Error("no visits models")
	}
	if len(res.Models.Kernel[measurement.MetricBytes]) == 0 {
		t.Error("no bytes models for memory operations")
	}
}

func TestRunCampaignAllAppSeriesModeled(t *testing.T) {
	res, err := RunCampaign(testCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{epoch.AppPath, epoch.CompPath, epoch.CommPath, epoch.MemPath} {
		if res.Models.App[path] == nil {
			t.Errorf("missing application model %q", path)
		}
	}
}

func TestCampaignValidate(t *testing.T) {
	c := testCampaign(t)
	c.ModelingRanks = []int{2, 4}
	if c.Validate() == nil {
		t.Error("too few modeling ranks accepted")
	}
	c = testCampaign(t)
	c.Reps = 0
	if c.Validate() == nil {
		t.Error("zero repetitions accepted")
	}
}

func TestPercentErrorMissingSeries(t *testing.T) {
	res := &CampaignResult{
		Models:     &ModelSet{App: map[string]*modeling.Model{}},
		AppActuals: map[string]map[int][]float64{},
	}
	if _, ok := res.PercentError("App", 4); ok {
		t.Error("missing model reported ok")
	}
}

func TestActualMedianMissing(t *testing.T) {
	res := &CampaignResult{AppActuals: map[string]map[int][]float64{
		"App": {4: {1, 2, 3}},
	}}
	if v, ok := res.ActualMedian("App", 4); !ok || !mathutil.Close(v, 2) {
		t.Errorf("median = %v ok=%v", v, ok)
	}
	if _, ok := res.ActualMedian("App", 8); ok {
		t.Error("missing ranks reported ok")
	}
	if _, ok := res.ActualMedian("nope", 4); ok {
		t.Error("missing callpath reported ok")
	}
}

func TestActualMedianEvenReps(t *testing.T) {
	res := &CampaignResult{AppActuals: map[string]map[int][]float64{
		"App": {4: {1, 3}},
	}}
	if v, _ := res.ActualMedian("App", 4); !mathutil.Close(v, 2) {
		t.Errorf("even median = %v, want 2", v)
	}
}

func TestAggregateProfilesEmpty(t *testing.T) {
	if _, err := AggregateProfiles(nil, aggregate.DefaultOptions()); err == nil {
		t.Error("empty profiles accepted")
	}
}

func TestAggregateProfilesSortedByPoint(t *testing.T) {
	b, err := engine.ByName("imdb")
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.RunConfig{
		System: hardware.DEEP(), Strategy: parallel.DataParallel{},
		WeakScaling: true, Seed: 3, SampleRanks: 2,
	}
	var all []*profile.Profile
	for _, ranks := range []int{8, 2, 4} {
		cfg.Ranks = ranks
		ps, err := engine.Profile(b, cfg, 1, true)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, ps...)
	}
	aggs, err := AggregateProfiles(all, aggregate.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 3 {
		t.Fatalf("aggregates = %d, want 3", len(aggs))
	}
	for i := 1; i < len(aggs); i++ {
		if !aggs[i-1].Point.Less(aggs[i].Point) {
			t.Error("aggregates not sorted by point")
		}
	}
}

func TestBuildModelsFiltersRareKernels(t *testing.T) {
	res, err := RunCampaign(testCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	// Every surviving kernel series must span at least 5 configurations.
	for _, byPath := range res.Models.Kernel {
		for path, m := range byPath {
			if len(m.Points) < measurement.MinModelingPoints {
				t.Errorf("kernel %s modeled from %d points", path, len(m.Points))
			}
		}
	}
}

func TestRunCampaignDeterministic(t *testing.T) {
	r1, err := RunCampaign(testCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunCampaign(testCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	f1 := r1.Models.App[epoch.AppPath].Function.String()
	f2 := r2.Models.App[epoch.AppPath].Function.String()
	if f1 != f2 {
		t.Errorf("non-deterministic campaign: %s vs %s", f1, f2)
	}
}

// TestRunCampaignResilienceQuarantine drives the facade's resilience
// wiring: a degraded-class fault injected at one fit task must quarantine
// that kernel and mark the model set partial, not fail the campaign.
func TestRunCampaignResilienceQuarantine(t *testing.T) {
	c := testCampaign(t)
	c.Options.Resilience.Injector = resilience.NewInjector(nil,
		resilience.Fault{Point: "fit:task:0", Kind: resilience.KindError, Class: resilience.ClassDegraded})
	res, err := RunCampaign(c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Models.Degraded() {
		t.Fatal("injected degraded fit fault did not mark the model set partial")
	}
	found := false
	for _, f := range res.Models.Skipped {
		if f.Class == pipeline.FailureDegraded {
			found = true
		}
	}
	if !found {
		t.Fatalf("no degraded-class entry in Skipped: %+v", res.Models.Skipped)
	}
}

// TestRunCampaignCheckpointResume pins the facade's checkpoint/resume
// path: a campaign checkpointed through Options.Resilience and resumed
// over identical inputs reproduces the same application model.
func TestRunCampaignCheckpointResume(t *testing.T) {
	store := &resilience.Store{Dir: t.TempDir()}
	c := testCampaign(t)
	c.Options.Resilience.Checkpoint = store
	cold, err := RunCampaign(c)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(store.Dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("checkpoint store empty after campaign (err=%v)", err)
	}
	c.Options.Resilience.Resume = true
	resumed, err := RunCampaign(c)
	if err != nil {
		t.Fatal(err)
	}
	want := cold.Models.App[epoch.AppPath].Function.String()
	got := resumed.Models.App[epoch.AppPath].Function.String()
	if want != got {
		t.Fatalf("resumed app model %q differs from cold run %q", got, want)
	}
}
