package core

import (
	"fmt"
	"sort"

	"extradeep/internal/aggregate"
	"extradeep/internal/epoch"
	"extradeep/internal/measurement"
	"extradeep/internal/modeling"
	"extradeep/internal/profile"
	"extradeep/internal/simulator/engine"
)

// GridCampaign measures and models a two-parameter surface T(p, B): the
// number of MPI ranks x₁ and the per-worker batch size x₂, the example the
// paper gives for multi-parameter modeling (Section 2.3: P(x₁,x₂) with
// x₁ = {4,8,…} and x₂ = {32,64,…}). Each grid cell is profiled with the
// efficient sampling strategy and the resulting derived per-epoch values
// are fitted with the multi-parameter PMNF.
type GridCampaign struct {
	// Benchmark is the application under study; its BatchSize is
	// overridden per grid cell.
	Benchmark engine.Benchmark
	// Config is the run-configuration template.
	Config engine.RunConfig
	// Ranks and Batches span the measured grid.
	Ranks   []int
	Batches []int
	// Reps is the number of repetitions per cell.
	Reps int
	// Options configures aggregation and modeling.
	Options Options
}

// Validate checks the grid campaign.
func (c GridCampaign) Validate() error {
	if err := c.Benchmark.Validate(); err != nil {
		return err
	}
	if len(c.Ranks) < measurement.MinModelingPoints || len(c.Batches) < measurement.MinModelingPoints {
		return fmt.Errorf("core: grid needs at least %d values per parameter, have %d×%d",
			measurement.MinModelingPoints, len(c.Ranks), len(c.Batches))
	}
	if c.Reps < 1 {
		return fmt.Errorf("core: %d repetitions", c.Reps)
	}
	return nil
}

// GridResult is the outcome of RunGridCampaign.
type GridResult struct {
	// Models are the fitted two-parameter models.
	Models *ModelSet
	// Aggregates are the per-cell aggregation results.
	Aggregates []*aggregate.ConfigAggregate
	// Setup is the epoch-extrapolation setup used, exposed so callers can
	// derive actual values for held-out cells.
	Setup epoch.SetupFunc
}

// RunGridCampaign profiles every (ranks, batch) cell and fits
// multi-parameter models over the grid.
func RunGridCampaign(c GridCampaign) (*GridResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	opts := c.Options
	if opts.Modeling.Unset() {
		opts = DefaultOptions()
		// The batch size enters the per-epoch metric inversely (fewer,
		// bigger steps), so the grid surface needs negative exponents
		// regardless of the scaling mode.
		opts.Modeling = modeling.StrongScalingOptions()
	}

	ranks := append([]int(nil), c.Ranks...)
	batches := append([]int(nil), c.Batches...)
	sort.Ints(ranks)
	sort.Ints(batches)

	var aggs []*aggregate.ConfigAggregate
	for _, r := range ranks {
		for _, batch := range batches {
			bench := c.Benchmark
			bench.BatchSize = batch
			cfg := c.Config
			cfg.Ranks = r
			cfg.ProfileParams = []string{"p", "b"}
			cfg.ProfilePoint = []float64{float64(r), float64(batch)}
			var group []*profile.Profile
			for rep := 1; rep <= c.Reps; rep++ {
				ps, err := engine.Profile(bench, cfg, rep, true)
				if err != nil {
					return nil, fmt.Errorf("core: grid cell (%d ranks, batch %d) rep %d: %w", r, batch, rep, err)
				}
				group = append(group, ps...)
			}
			agg, err := aggregate.Aggregate(group, opts.Aggregation)
			if err != nil {
				return nil, fmt.Errorf("core: aggregating grid cell (%d, %d): %w", r, batch, err)
			}
			aggs = append(aggs, agg)
		}
	}

	setup := GridSetup(c.Benchmark, c.Config)
	models, err := BuildModels(aggs, setup, opts)
	if err != nil {
		return nil, err
	}
	return &GridResult{Models: models, Aggregates: aggs, Setup: setup}, nil
}

// GridSetup returns the epoch-extrapolation setup for two-parameter grid
// points (ranks, batch): the batch size comes from the point's second
// coordinate rather than the benchmark's default.
func GridSetup(b engine.Benchmark, cfg engine.RunConfig) epoch.SetupFunc {
	return func(point measurement.Point) epoch.Params {
		ranks := int(point[0])
		bench := b
		if len(point) > 1 {
			bench.BatchSize = int(point[1])
		}
		return engine.EpochParams(bench, cfg.Strategy, ranks, cfg.WeakScaling)
	}
}

// ActualAppMedian returns the measured median per-epoch value of an
// application series at the given grid point, derived from the campaign's
// aggregates — useful for validating predictions on held-out cells.
func (r *GridResult) ActualAppMedian(callpath string, point measurement.Point) (float64, bool) {
	s := r.Models.AppExperiment.Series(measurement.MetricTime, callpath)
	if s == nil {
		return 0, false
	}
	sample := s.At(point)
	if sample == nil {
		return 0, false
	}
	return sample.Median()
}
