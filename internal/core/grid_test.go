package core

import (
	"math"
	"testing"

	"extradeep/internal/epoch"
	"extradeep/internal/mathutil"
	"extradeep/internal/measurement"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

func testGridCampaign(t *testing.T) GridCampaign {
	t.Helper()
	b, err := engine.ByName("cifar10")
	if err != nil {
		t.Fatal(err)
	}
	return GridCampaign{
		Benchmark: b,
		Config: engine.RunConfig{
			System:      hardware.DEEP(),
			Strategy:    parallel.DataParallel{FusionBuckets: 4},
			WeakScaling: true,
			Seed:        5,
			SampleRanks: 2,
		},
		Ranks:   []int{2, 4, 6, 8, 10},
		Batches: []int{32, 64, 128, 256, 512},
		Reps:    2,
	}
}

func TestRunGridCampaignBuildsTwoParamModel(t *testing.T) {
	res, err := RunGridCampaign(testGridCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Models.App[epoch.AppPath]
	if m == nil {
		t.Fatal("no application model")
	}
	if got := len(m.Points[0]); got != 2 {
		t.Fatalf("model arity = %d, want 2", got)
	}
	// 25 grid cells measured.
	if len(res.Aggregates) != 25 {
		t.Fatalf("aggregates = %d, want 25", len(res.Aggregates))
	}
}

func TestGridModelAccuracyOnGrid(t *testing.T) {
	res, err := RunGridCampaign(testGridCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Models.App[epoch.AppPath]
	// Model accuracy across the measured grid cells: median error small.
	var worst float64
	for _, agg := range res.Aggregates {
		actual, ok := res.ActualAppMedian(epoch.AppPath, agg.Point)
		if !ok || actual == 0 {
			t.Fatalf("no actual at %s", agg.Point.Key())
		}
		pred := m.Function.EvalAt(agg.Point)
		e := math.Abs(pred-actual) / actual * 100
		if e > worst {
			worst = e
		}
	}
	if worst > 25 {
		t.Errorf("worst on-grid error = %.1f%%, want <25%%", worst)
	}
}

func TestGridBatchSizeEffect(t *testing.T) {
	// Larger per-worker batches mean fewer steps per epoch but more work
	// per step; the fixed per-step overhead (dispatch, latency) makes
	// small batches less efficient — the epoch time at batch 32 should
	// exceed the epoch time at batch 512 at equal scale.
	res, err := RunGridCampaign(testGridCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	small, ok1 := res.ActualAppMedian(epoch.AppPath, measurement.Point{4, 32})
	large, ok2 := res.ActualAppMedian(epoch.AppPath, measurement.Point{4, 512})
	if !ok1 || !ok2 {
		t.Fatal("missing grid cells")
	}
	if small <= large {
		t.Errorf("epoch at batch 32 (%v) should exceed batch 512 (%v)", small, large)
	}
}

func TestGridCampaignValidate(t *testing.T) {
	c := testGridCampaign(t)
	c.Batches = []int{32, 64}
	if c.Validate() == nil {
		t.Error("too few batch values accepted")
	}
	c = testGridCampaign(t)
	c.Reps = 0
	if c.Validate() == nil {
		t.Error("zero reps accepted")
	}
}

func TestGridSetupUsesPointBatch(t *testing.T) {
	b, err := engine.ByName("cifar10")
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.RunConfig{Strategy: parallel.DataParallel{}, WeakScaling: true}
	setup := GridSetup(b, cfg)
	p := setup(measurement.Point{4, 64})
	if !mathutil.Close(p.BatchSize, 64) {
		t.Errorf("batch = %v, want 64 (from point)", p.BatchSize)
	}
	// Single-coordinate points fall back to the benchmark's batch.
	p1 := setup(measurement.Point{4})
	if !mathutil.Close(p1.BatchSize, float64(b.BatchSize)) {
		t.Errorf("fallback batch = %v, want %d", p1.BatchSize, b.BatchSize)
	}
}

func TestActualAppMedianMissingPoint(t *testing.T) {
	res, err := RunGridCampaign(testGridCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.ActualAppMedian(epoch.AppPath, measurement.Point{3, 100}); ok {
		t.Error("missing grid point reported ok")
	}
	if _, ok := res.ActualAppMedian("no-such-series", measurement.Point{2, 32}); ok {
		t.Error("missing series reported ok")
	}
}
