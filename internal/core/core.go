// Package core is the Extra-Deep framework facade: it wires the complete
// performance-analysis pipeline of Fig. 1 — application profiling (here:
// the training simulator), data preprocessing and aggregation (Fig. 2),
// per-epoch extrapolation (Eqs. 2–4), automated PMNF modeling (Eq. 5/7),
// and the analysis layer — behind a small API.
//
// Typical use:
//
//	camp := core.Campaign{ ... }
//	res, err := core.RunCampaign(camp)
//	model := res.Models.App[epoch.AppPath]       // training time per epoch
//	pred := model.Predict(40)                    // Q1: time at 40 ranks
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"extradeep/internal/aggregate"
	"extradeep/internal/epoch"
	"extradeep/internal/measurement"
	"extradeep/internal/modeling"
	"extradeep/internal/pipeline"
	"extradeep/internal/profile"
	"extradeep/internal/resilience"
	"extradeep/internal/simulator/engine"
)

// Resilience bundles the pipeline's fault-handling knobs for facade
// callers: fault injection, per-stage deadline budgets, the retry
// policy, and checkpoint/resume. The zero value disables all of it —
// the production default. See pipeline.Config and DESIGN.md §13.
type Resilience struct {
	// Injector fires scheduled deterministic faults; nil disables.
	Injector *resilience.Injector
	// Retry is the per-stage backoff policy for retryable failures.
	Retry resilience.RetryPolicy
	// StageTimeout is the deadline budget per stage attempt; 0 disables.
	StageTimeout time.Duration
	// Checkpoint persists completed fit tasks incrementally; nil disables.
	Checkpoint *resilience.Store
	// Resume reuses content-keyed prior records from Checkpoint.
	Resume bool
}

// Options bundles the pipeline configuration.
type Options struct {
	// Aggregation configures the Fig. 2 preprocessing.
	Aggregation aggregate.Options
	// Modeling configures the PMNF search.
	Modeling modeling.Options
	// MinConfigurations is the kernel-filtering threshold (step (4) of
	// Fig. 2); 0 means the paper's 5.
	MinConfigurations int
	// Workers bounds the fit worker pool (see pipeline.Config.Workers):
	// 1 runs sequentially, 0 uses all cores. Output is byte-identical for
	// every value.
	Workers int
	// Resilience configures fault injection, retries, stage deadlines and
	// checkpoint/resume; the zero value disables the whole layer.
	Resilience Resilience
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		Aggregation:       aggregate.DefaultOptions(),
		Modeling:          modeling.DefaultOptions(),
		MinConfigurations: measurement.MinModelingPoints,
	}
}

// ModelSet holds every model created for one application. It is an alias
// for the pipeline's model set: the staged pipeline owns model creation,
// core keeps the name for its facade API.
type ModelSet = pipeline.ModelSet

// pipelineFor assembles the staged pipeline behind this facade.
func (o Options) pipelineFor() *pipeline.Pipeline {
	return pipeline.New(pipeline.Config{
		Workers:           o.Workers,
		Aggregation:       o.Aggregation,
		Modeling:          o.Modeling,
		MinConfigurations: o.MinConfigurations,
		Injector:          o.Resilience.Injector,
		Retry:             o.Resilience.Retry,
		StageTimeout:      o.Resilience.StageTimeout,
		Checkpoint:        o.Resilience.Checkpoint,
		Resume:            o.Resilience.Resume,
	})
}

// AggregateProfiles groups raw profiles by configuration and runs the
// Fig. 2 aggregation pipeline on each group, returning one aggregate per
// application configuration, sorted by measurement point.
func AggregateProfiles(profiles []*profile.Profile, opts aggregate.Options) ([]*aggregate.ConfigAggregate, error) {
	p := pipeline.New(pipeline.Config{Aggregation: opts})
	return p.Aggregate(context.Background(), profiles)
}

// BuildModels runs extrapolation and model fitting on aggregated
// configurations via the staged pipeline. Kernels present in fewer than
// MinConfigurations configurations are filtered out; kernels whose series
// cannot be modeled (degenerate data) are skipped silently, mirroring the
// tool's behaviour.
func BuildModels(aggs []*aggregate.ConfigAggregate, setup epoch.SetupFunc, opts Options) (*ModelSet, error) {
	return opts.pipelineFor().BuildModels(context.Background(), aggs, setup)
}

// Campaign describes one end-to-end measurement and modeling campaign on
// the simulated substrate: profile the benchmark at the modeling ranks
// (with repetitions), create models, and additionally measure the
// evaluation ranks for assessing predictive power.
type Campaign struct {
	// Benchmark is the application under study.
	Benchmark engine.Benchmark
	// Config is the run-configuration template; its Ranks field is
	// overwritten per measured point.
	Config engine.RunConfig
	// ModelingRanks are the rank counts used for model creation
	// (the paper's P(x₁), e.g. {2,4,6,8,10}).
	ModelingRanks []int
	// EvalRanks are the additional rank counts measured to evaluate
	// predictive power (the paper's P⁺).
	EvalRanks []int
	// Reps is the number of measurement repetitions per configuration
	// (the paper uses 5).
	Reps int
	// Options configures aggregation and modeling.
	Options Options
}

// Validate checks the campaign. The paper's minimum of five modeling
// configurations applies unless the campaign's modeling options lower it
// explicitly (e.g. for the modeling-point ablation).
func (c Campaign) Validate() error {
	if err := c.Benchmark.Validate(); err != nil {
		return err
	}
	min := c.Options.Modeling.MinPoints
	if min <= 0 {
		min = measurement.MinModelingPoints
	}
	if len(c.ModelingRanks) < min {
		return fmt.Errorf("core: %d modeling ranks, need at least %d", len(c.ModelingRanks), min)
	}
	if c.Reps < 1 {
		return fmt.Errorf("core: %d repetitions", c.Reps)
	}
	return nil
}

// CampaignResult is the outcome of RunCampaign.
type CampaignResult struct {
	// Models are the models fitted on the modeling ranks.
	Models *ModelSet
	// AppActuals holds the derived per-epoch application values measured
	// at every rank count (modeling and evaluation points): callpath →
	// ranks → per-repetition values.
	AppActuals map[string]map[int][]float64
	// Aggregates are the per-configuration aggregation results for all
	// measured points, sorted by point.
	Aggregates []*aggregate.ConfigAggregate
}

// ActualMedian returns the median measured value of an application series
// at the given rank count.
func (r *CampaignResult) ActualMedian(callpath string, ranks int) (float64, bool) {
	byRanks, ok := r.AppActuals[callpath]
	if !ok {
		return 0, false
	}
	reps, ok := byRanks[ranks]
	if !ok || len(reps) == 0 {
		return 0, false
	}
	med := append([]float64(nil), reps...)
	sort.Float64s(med)
	n := len(med)
	if n%2 == 1 {
		return med[n/2], true
	}
	return med[n/2-1]/2 + med[n/2]/2, true
}

// PercentError returns the model's absolute percentage error against the
// measured median of an application series at the given rank count.
func (r *CampaignResult) PercentError(callpath string, ranks int) (float64, bool) {
	m, ok := r.Models.App[callpath]
	if !ok {
		return 0, false
	}
	actual, ok := r.ActualMedian(callpath, ranks)
	if !ok || actual == 0 {
		return 0, false
	}
	pred := m.Predict(float64(ranks))
	diff := pred - actual
	if diff < 0 {
		diff = -diff
	}
	return diff / actual * 100, true
}

// RunCampaign executes the campaign: simulated sampled profiling at every
// modeling and evaluation rank count with the configured repetitions,
// aggregation, extrapolation, and model creation on the modeling subset.
func RunCampaign(c Campaign) (*CampaignResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	opts := c.Options
	if opts.Modeling.Unset() {
		opts = DefaultOptions()
		opts.Workers = c.Options.Workers
		opts.Resilience = c.Options.Resilience
		if !c.Config.WeakScaling {
			// Strong-scaling runtimes shrink with scale; the search space
			// needs negative exponents to express that.
			opts.Modeling = modeling.StrongScalingOptions()
		}
	}

	modelingSet := make(map[int]bool, len(c.ModelingRanks))
	allRanks := append([]int(nil), c.ModelingRanks...)
	for _, r := range c.ModelingRanks {
		modelingSet[r] = true
	}
	for _, r := range c.EvalRanks {
		if !modelingSet[r] {
			allRanks = append(allRanks, r)
		}
	}
	sort.Ints(allRanks)

	var modelingAggs, allAggs []*aggregate.ConfigAggregate
	for _, ranks := range allRanks {
		cfg := c.Config
		cfg.Ranks = ranks
		var group []*profile.Profile
		for rep := 1; rep <= c.Reps; rep++ {
			profiles, err := engine.Profile(c.Benchmark, cfg, rep, true)
			if err != nil {
				return nil, fmt.Errorf("core: profiling %d ranks rep %d: %w", ranks, rep, err)
			}
			group = append(group, profiles...)
		}
		agg, err := aggregate.Aggregate(group, opts.Aggregation)
		if err != nil {
			return nil, fmt.Errorf("core: aggregating %d ranks: %w", ranks, err)
		}
		allAggs = append(allAggs, agg)
		if modelingSet[ranks] {
			modelingAggs = append(modelingAggs, agg)
		}
	}

	setup := engine.SetupFunc(c.Benchmark, c.Config.Strategy, c.Config.WeakScaling)
	models, err := BuildModels(modelingAggs, setup, opts)
	if err != nil {
		return nil, err
	}

	// Derived actual per-epoch values at every point for evaluation.
	appAll, err := epoch.BuildApplicationExperiment(allAggs, setup)
	if err != nil {
		return nil, err
	}
	actuals := make(map[string]map[int][]float64)
	for _, path := range appAll.Callpaths(measurement.MetricTime) {
		byRanks := make(map[int][]float64)
		s := appAll.Series(measurement.MetricTime, path)
		for _, sm := range s.Samples {
			byRanks[int(sm.Point[0])] = append([]float64(nil), sm.Reps...)
		}
		actuals[path] = byRanks
	}
	return &CampaignResult{Models: models, AppActuals: actuals, Aggregates: allAggs}, nil
}
