package ingest_test

import (
	"fmt"
	"os"
	"testing"

	"extradeep/internal/faults"
	"extradeep/internal/ingest"
	"extradeep/internal/profile"
	"extradeep/internal/propcheck"
	"extradeep/internal/propcheck/edgen"
)

// corruptionCase pairs a valid profile with one corruption kind.
type corruptionCase struct {
	p    *profile.Profile
	kind faults.Kind
}

func corruptionCaseGen() propcheck.Gen[corruptionCase] {
	pg := edgen.Profile()
	kinds := faults.Kinds()
	return propcheck.Gen[corruptionCase]{
		Generate: func(r *propcheck.Rand) corruptionCase {
			return corruptionCase{p: pg.Generate(r), kind: kinds[r.Intn(len(kinds))]}
		},
		Describe: func(c corruptionCase) string {
			return fmt.Sprintf("{%s corrupted by %v}", c.p.FileName(), c.kind)
		},
	}
}

// TestPropCorruptionQuarantinesOrValid: for every corruption kind applied
// to a valid profile, lenient ingestion either quarantines the file or
// loads a profile that still passes Validate — no NaN, Inf or negative
// duration ever reaches the aggregation pipeline, and every file is
// accounted for.
func TestPropCorruptionQuarantinesOrValid(t *testing.T) {
	propcheck.CheckConfig(t, propcheck.Config{Iterations: 60}, corruptionCaseGen(), func(c corruptionCase) error {
		dir := t.TempDir()
		store := profile.Store{Dir: dir}
		if err := store.Write(c.p); err != nil {
			return fmt.Errorf("writing pristine profile: %w", err)
		}
		path := dir + "/" + c.p.FileName()
		if _, err := faults.CorruptFile(path, c.kind); err != nil {
			return fmt.Errorf("applying %v: %w", c.kind, err)
		}

		files, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		report, err := ingest.LoadDir(dir, "json", ingest.Options{Policy: ingest.Lenient})
		if err != nil {
			return fmt.Errorf("lenient ingestion aborted on %v: %w", c.kind, err)
		}
		for _, p := range report.Profiles {
			if verr := p.Validate(); verr != nil {
				return fmt.Errorf("corruption %v leaked an invalid profile downstream: %w", c.kind, verr)
			}
		}
		if got := len(report.Profiles) + len(report.Quarantined); got != len(files) {
			return fmt.Errorf("corruption %v: %d files but %d loaded + %d quarantined",
				c.kind, len(files), len(report.Profiles), len(report.Quarantined))
		}
		return nil
	})
}
