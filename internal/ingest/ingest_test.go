package ingest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"extradeep/internal/calltree"
	"extradeep/internal/faults"
	"extradeep/internal/importer"
	"extradeep/internal/profile"
	"extradeep/internal/trace"
)

// fixtureProfile builds a small but fully valid profile at configuration x.
func fixtureProfile(x float64, rank, rep int) *profile.Profile {
	mk := func(name string, kind calltree.Kind, start, dur float64) trace.Event {
		return trace.Event{Name: name, Kind: kind, Callpath: "App->train->" + name, Start: start, Duration: dur}
	}
	return &profile.Profile{
		App:      "cifar10",
		Params:   []string{"p"},
		Config:   []float64{x},
		Rank:     rank,
		Rep:      rep,
		WallTime: 2.0,
		Sampled:  true,
		Trace: trace.Trace{
			Rank: rank,
			Events: []trace.Event{
				mk("EigenMetaKernel", calltree.KindCUDA, 0.01, 0.05),
				mk("MPI_Allreduce", calltree.KindMPI, 0.41, 0.02),
				mk("EigenMetaKernel", calltree.KindCUDA, 1.01, 0.05),
				mk("MPI_Allreduce", calltree.KindMPI, 1.41, 0.02),
			},
			Steps: []trace.StepSpan{
				{Epoch: 0, Index: 0, Phase: trace.PhaseTrain, Start: 0, End: 0.4},
				{Epoch: 0, Index: 1, Phase: trace.PhaseTrain, Start: 0.4, End: 0.8},
				{Epoch: 1, Index: 0, Phase: trace.PhaseTrain, Start: 1.0, End: 1.4},
				{Epoch: 1, Index: 1, Phase: trace.PhaseTrain, Start: 1.4, End: 1.8},
			},
			Epochs: []trace.EpochSpan{
				{Index: 0, Start: 0, End: 0.9},
				{Index: 1, Start: 1.0, End: 1.9},
			},
		},
	}
}

// writeCampaign writes a 5-configuration × 2-repetition campaign (10
// files) in the given format and returns the directory and sorted file
// names.
func writeCampaign(t *testing.T, format string) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	var names []string
	for _, x := range []float64{2, 4, 6, 8, 10} {
		for rep := 1; rep <= 2; rep++ {
			p := fixtureProfile(x, 0, rep)
			name := strings.TrimSuffix(p.FileName(), ".json") + "." + format
			path := filepath.Join(dir, name)
			switch format {
			case "json":
				store := &profile.Store{Dir: dir}
				if err := store.Write(p); err != nil {
					t.Fatal(err)
				}
			case "csv":
				var buf bytes.Buffer
				if err := importer.WriteCSV(&buf, p); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			names = append(names, name)
		}
	}
	return dir, names
}

func TestLoadDirAllHealthy(t *testing.T) {
	for _, format := range []string{"json", "csv"} {
		dir, _ := writeCampaign(t, format)
		rep, err := LoadDir(dir, format, Options{})
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if len(rep.Profiles) != 10 || len(rep.Quarantined) != 0 {
			t.Fatalf("%s: %d profiles, %d quarantined", format, len(rep.Profiles), len(rep.Quarantined))
		}
		if err := rep.Gate(Options{}); err != nil {
			t.Fatalf("%s: gate: %v", format, err)
		}
		if len(rep.Warnings) != 0 {
			t.Errorf("%s: unexpected warnings: %v", format, rep.Warnings)
		}
		if rep.Summary() != "" {
			t.Errorf("%s: summary not empty for a clean load", format)
		}
	}
}

// TestLenientQuarantinesEveryFaultKind is the degradation-gate contract:
// for every corruption kind, lenient ingestion quarantines exactly the
// corrupted files, keeps every healthy one, and the gate still accepts
// the surviving five configurations.
func TestLenientQuarantinesEveryFaultKind(t *testing.T) {
	for _, format := range []string{"json", "csv"} {
		for _, kind := range faults.Kinds() {
			t.Run(fmt.Sprintf("%s/%s", format, kind), func(t *testing.T) {
				dir, names := writeCampaign(t, format)
				// Corrupt one repetition each of two configurations.
				victims := []string{
					"cifar10.x2.mpi0.r1." + format,
					"cifar10.x6.mpi0.r2." + format,
				}
				var corrupted []string
				for _, v := range victims {
					out, err := faults.CorruptFile(filepath.Join(dir, v), kind)
					if err != nil {
						t.Fatal(err)
					}
					corrupted = append(corrupted, out)
				}

				rep, err := LoadDir(dir, format, Options{Policy: Lenient})
				if err != nil {
					t.Fatalf("lenient LoadDir failed: %v", err)
				}
				wantHealthy, wantQuarantined := len(names)-2, 2
				if kind == faults.DuplicateRankRep {
					// The originals stay valid; the two copies collide.
					wantHealthy = len(names)
				}
				if len(rep.Profiles) != wantHealthy {
					t.Errorf("kept %d profiles, want %d", len(rep.Profiles), wantHealthy)
				}
				if len(rep.Quarantined) != wantQuarantined {
					t.Fatalf("quarantined %d files, want %d: %v", len(rep.Quarantined), wantQuarantined, rep.Quarantined)
				}
				got := map[string]bool{}
				for _, q := range rep.Quarantined {
					got[q.Path] = true
					if q.Err == nil {
						t.Errorf("%s quarantined without an error", q.Path)
					}
				}
				for _, c := range corrupted {
					if !got[c] {
						t.Errorf("corrupted file %s not quarantined (got %v)", c, rep.Quarantined)
					}
				}

				if err := rep.Gate(Options{}); err != nil {
					t.Errorf("gate refused a modelable set: %v", err)
				}
				if kind != faults.DuplicateRankRep && len(rep.Warnings) == 0 {
					t.Error("no degradation warnings for configurations that lost a repetition")
				}

				sum := rep.Summary()
				for _, c := range corrupted {
					if !strings.Contains(sum, c) {
						t.Errorf("summary does not name %s:\n%s", c, sum)
					}
				}
			})
		}
	}
}

func TestStrictAbortsOnFirstFailure(t *testing.T) {
	dir, _ := writeCampaign(t, "json")
	bad := filepath.Join(dir, "cifar10.x2.mpi0.r1.json")
	if _, err := faults.CorruptFile(bad, faults.Truncate); err != nil {
		t.Fatal(err)
	}
	_, err := LoadDir(dir, "json", Options{Policy: Strict})
	if err == nil {
		t.Fatal("strict policy accepted a corrupted campaign")
	}
	if !strings.Contains(err.Error(), bad) {
		t.Errorf("strict error does not name the failing file: %v", err)
	}
}

func TestGateRefusesBelowMinimumConfigurations(t *testing.T) {
	dir, _ := writeCampaign(t, "json")
	// Destroy every repetition of configuration x8: 4 configurations left.
	var bad []string
	for _, v := range []string{"cifar10.x8.mpi0.r1.json", "cifar10.x8.mpi0.r2.json"} {
		path := filepath.Join(dir, v)
		if _, err := faults.CorruptFile(path, faults.Garbage); err != nil {
			t.Fatal(err)
		}
		bad = append(bad, path)
	}
	rep, err := LoadDir(dir, "json", Options{})
	if err != nil {
		t.Fatal(err)
	}
	gateErr := rep.Gate(Options{})
	if gateErr == nil {
		t.Fatal("gate accepted 4 configurations")
	}
	msg := gateErr.Error()
	if !strings.Contains(msg, "4 usable configuration") {
		t.Errorf("gate error does not state the configuration count: %v", msg)
	}
	// The aggregate multi-error must list every quarantined file.
	for _, b := range bad {
		if !strings.Contains(msg, b) {
			t.Errorf("aggregate error does not name %s: %v", b, msg)
		}
	}
	// And the quarantine entries stay reachable through errors.As.
	var q Quarantined
	if !errors.As(gateErr, &q) {
		t.Error("aggregate error hides the Quarantined entries from errors.As")
	}
}

func TestGateWarnsAboutFullyLostConfiguration(t *testing.T) {
	dir, _ := writeCampaign(t, "json")
	// A sixth configuration that loses all its files: the gate still has
	// five healthy ones, so it passes but must warn.
	store := &profile.Store{Dir: dir}
	p := fixtureProfile(12, 0, 1)
	if err := store.Write(p); err != nil {
		t.Fatal(err)
	}
	if _, err := faults.CorruptFile(filepath.Join(dir, p.FileName()), faults.Empty); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadDir(dir, "json", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Gate(Options{}); err != nil {
		t.Fatalf("gate: %v", err)
	}
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "(12)") && strings.Contains(w, "lost every profile") {
			found = true
		}
	}
	if !found {
		t.Errorf("no warning about the fully lost configuration: %v", rep.Warnings)
	}
}

func TestGateRefusesEmptySet(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cifar10.x2.mpi0.r1.json")
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadDir(dir, "json", Options{})
	if err != nil {
		t.Fatal(err)
	}
	gateErr := rep.Gate(Options{})
	if gateErr == nil {
		t.Fatal("gate accepted an empty profile set")
	}
	if !strings.Contains(gateErr.Error(), "no usable profiles") || !strings.Contains(gateErr.Error(), path) {
		t.Errorf("gate error incomplete: %v", gateErr)
	}
}

func TestLoadDirStageClassification(t *testing.T) {
	dir := t.TempDir()
	store := &profile.Store{Dir: dir}
	for i, x := range []float64{2, 4, 6, 8, 10} {
		if err := store.Write(fixtureProfile(x, 0, 1)); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	// read stage: a dangling symlink.
	if err := os.Symlink(filepath.Join(dir, "absent"), filepath.Join(dir, "a-dangling.json")); err != nil {
		t.Fatal(err)
	}
	// decode stage: garbage bytes.
	if err := os.WriteFile(filepath.Join(dir, "b-garbage.json"), []byte("]["), 0o644); err != nil {
		t.Fatal(err)
	}
	// validate stage: decodes but violates an invariant.
	bad := fixtureProfile(12, 0, 1)
	bad.Rep = 1
	if err := store.Write(bad); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, bad.FileName()))
	if err != nil {
		t.Fatal(err)
	}
	mutated, err := faults.Apply(faults.NegativeDuration, data, "json")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, bad.FileName()), mutated, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := LoadDir(dir, "json", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Profiles) != 5 || len(rep.Quarantined) != 3 {
		t.Fatalf("%d profiles, %d quarantined: %v", len(rep.Profiles), len(rep.Quarantined), rep.Quarantined)
	}
	stages := map[string]Stage{}
	for _, q := range rep.Quarantined {
		stages[filepath.Base(q.Path)] = q.Stage
	}
	if stages["a-dangling.json"] != StageRead {
		t.Errorf("dangling symlink classified as %v, want read", stages["a-dangling.json"])
	}
	if stages["b-garbage.json"] != StageDecode {
		t.Errorf("garbage classified as %v, want decode", stages["b-garbage.json"])
	}
	if stages[bad.FileName()] != StageValidate {
		t.Errorf("negative duration classified as %v, want validate", stages[bad.FileName()])
	}
}

func TestLoadDirRejectsUnknownFormatAndMissingDir(t *testing.T) {
	if _, err := LoadDir(t.TempDir(), "xml", Options{}); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := LoadDir(filepath.Join(t.TempDir(), "absent"), "json", Options{}); err == nil {
		t.Error("missing directory accepted")
	}
}

func TestCSVQuarantineCarriesPathAndLine(t *testing.T) {
	dir, _ := writeCampaign(t, "csv")
	victim := filepath.Join(dir, "cifar10.x4.mpi0.r1.csv")
	if _, err := faults.CorruptFile(victim, faults.NaNMetric); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadDir(dir, "csv", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("quarantined %v", rep.Quarantined)
	}
	q := rep.Quarantined[0]
	if q.Path != victim {
		t.Errorf("path = %q", q.Path)
	}
	if q.Stage != StageValidate {
		t.Errorf("NaN metric classified as %v, want validate (it decodes fine)", q.Stage)
	}
	if !strings.Contains(q.Err.Error(), "non-finite") {
		t.Errorf("error does not explain the non-finite value: %v", q.Err)
	}
}

// TestGateErrorStructured pins the satellite fix of the edserve PR: the
// lenient-mode aggregate gate error must surface its per-file stage
// classification structurally — a typed GateError with typed Quarantined
// entries — and keep it reachable after callers wrap the error, instead
// of flattening the stages into text.
func TestGateErrorStructured(t *testing.T) {
	dir, _ := writeCampaign(t, "json")
	// Three distinct failure stages in one campaign: a garbage file
	// (decode), a NaN metric (validate), and an unreadable duplicate-free
	// set is covered elsewhere; destroying both x8 repetitions drops the
	// campaign below the 5-configuration minimum so the gate refuses.
	if _, err := faults.CorruptFile(filepath.Join(dir, "cifar10.x8.mpi0.r1.json"), faults.Garbage); err != nil {
		t.Fatal(err)
	}
	if _, err := faults.CorruptFile(filepath.Join(dir, "cifar10.x8.mpi0.r2.json"), faults.NegativeDuration); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadDir(dir, "json", Options{})
	if err != nil {
		t.Fatal(err)
	}
	gateErr := rep.Gate(Options{})
	if gateErr == nil {
		t.Fatal("gate accepted a 4-configuration campaign")
	}

	// A caller wrapping the error (the CLI and edserve both do) must not
	// lose the structure.
	wrapped := fmt.Errorf("extradeep: %w", gateErr)
	var ge *GateError
	if !errors.As(wrapped, &ge) {
		t.Fatal("wrapped gate error is not errors.As-reachable as *GateError")
	}
	if len(ge.Refusals) != 1 {
		t.Errorf("got %d refusals, want 1: %v", len(ge.Refusals), ge.Refusals)
	}
	stages := map[Stage]int{}
	for _, q := range ge.Quarantined {
		stages[q.Stage]++
	}
	if stages[StageDecode] != 1 || stages[StageValidate] != 1 {
		t.Errorf("per-file stages lost: got %v, want 1 decode + 1 validate", stages)
	}

	// The rendered text must stay byte-identical to the historical
	// errors.Join layout (one line per refusal, then per file).
	join := errors.Join(ge.Unwrap()...)
	if gateErr.Error() != join.Error() {
		t.Errorf("GateError text diverged from errors.Join:\n got: %q\nwant: %q", gateErr.Error(), join.Error())
	}
	// Individual Quarantined entries stay reachable too.
	var q Quarantined
	if !errors.As(wrapped, &q) {
		t.Error("wrapped gate error hides Quarantined from errors.As")
	}
}

// TestDecodeBytesStageClassification pins the in-memory validation entry
// point edserve uses for uploads: the stage classification must match
// what LoadDir reports for the same bytes on disk.
func TestDecodeBytesStageClassification(t *testing.T) {
	valid := fixtureProfile(2, 0, 1)
	data, err := json.Marshal(valid)
	if err != nil {
		t.Fatal(err)
	}
	if p, _, err := DecodeBytes(data, "json"); err != nil || p.App != "cifar10" {
		t.Fatalf("valid profile rejected: %v", err)
	}
	for _, tc := range []struct {
		name   string
		kind   faults.Kind
		format string
		want   Stage
	}{
		{"garbage json", faults.Garbage, "json", StageDecode},
		{"truncated json", faults.Truncate, "json", StageDecode},
		{"nan metric csv", faults.NaNMetric, "csv", StageValidate},
		{"missing header csv", faults.MissingHeader, "csv", StageDecode},
	} {
		t.Run(tc.name, func(t *testing.T) {
			raw := data
			if tc.format == "csv" {
				var b bytes.Buffer
				if err := importer.WriteCSV(&b, valid); err != nil {
					t.Fatal(err)
				}
				raw = b.Bytes()
			}
			bad, err := faults.Apply(tc.kind, raw, tc.format)
			if err != nil {
				t.Fatal(err)
			}
			_, stage, err := DecodeBytes(bad, tc.format)
			if err == nil {
				t.Fatal("corrupted bytes decoded cleanly")
			}
			if stage != tc.want {
				t.Errorf("stage = %v, want %v (err: %v)", stage, tc.want, err)
			}
		})
	}
}
