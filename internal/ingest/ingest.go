// Package ingest is the fault-tolerant loading layer between the on-disk
// profile formats and the analysis pipeline. The paper's pipeline is built
// for messy measurement data — medians over steps, ranks and repetitions
// exist because profiles are noisy — but a profiling campaign on a shared
// cluster also produces files that are outright broken: killed jobs leave
// truncated exports, full filesystems leave empty ones, converters emit
// NaN metrics. The raw loaders (profile.Store, importer.ImportDir) are
// all-or-nothing; this package wraps them with per-file error isolation:
//
//   - every file that fails to read, decode or validate is quarantined
//     into the Report with its path, failing stage and error, instead of
//     aborting the whole load (Lenient policy, the default) — or aborts
//     immediately under the Strict policy, preserving the historical
//     behavior;
//   - duplicate profiles — two files claiming the same (app,
//     configuration, rank, repetition) — are detected and the later file
//     quarantined, so retried jobs cannot double-count a measurement;
//   - after loading, the degradation Gate decides whether the surviving
//     set is still modelable: every application must keep at least the
//     paper's minimum number of distinct configurations (five, to
//     separate logarithmic, linear and polynomial growth). If not, Gate
//     returns one aggregate error listing every quarantined file; if so,
//     it reports warnings for configurations that lost files.
package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"extradeep/internal/importer"
	"extradeep/internal/measurement"
	"extradeep/internal/profile"
)

// Policy selects how per-file load failures are handled.
type Policy int

const (
	// Lenient quarantines files that fail to load and continues with the
	// rest. This is the default: one corrupted file must not discard an
	// entire measurement campaign.
	Lenient Policy = iota
	// Strict aborts on the first file that fails to load, the historical
	// all-or-nothing behavior.
	Strict
)

// String names the policy.
func (p Policy) String() string {
	if p == Strict {
		return "strict"
	}
	return "lenient"
}

// Stage locates where in the loading pipeline a file failed.
type Stage int

const (
	// StageRead covers I/O failures: the file could not be read at all.
	StageRead Stage = iota
	// StageDecode covers syntactic failures: the bytes are not a
	// well-formed JSON or CSV profile.
	StageDecode
	// StageValidate covers semantic failures: the profile decoded but
	// violates an invariant (non-finite metrics, malformed spans,
	// duplicate identity).
	StageValidate
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageRead:
		return "read"
	case StageDecode:
		return "decode"
	case StageValidate:
		return "validate"
	default:
		return "unknown"
	}
}

// Quarantined records one file excluded from the analysis.
type Quarantined struct {
	// Path is the file that failed.
	Path string
	// Stage is the loading stage the failure occurred in.
	Stage Stage
	// Err is the underlying error.
	Err error
}

// Error formats the quarantine entry as path: stage: cause.
func (q Quarantined) Error() string {
	return fmt.Sprintf("%s: %s: %v", q.Path, q.Stage, q.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (q Quarantined) Unwrap() error { return q.Err }

// Options tunes the ingestion behavior.
type Options struct {
	// Policy is Lenient (default) or Strict.
	Policy Policy
	// MinConfigurations is the per-application minimum of distinct
	// configurations the degradation gate requires; 0 means the paper's
	// measurement.MinModelingPoints.
	MinConfigurations int
}

func (o Options) minConfigs() int {
	if o.MinConfigurations <= 0 {
		return measurement.MinModelingPoints
	}
	return o.MinConfigurations
}

// Report is the outcome of one directory ingestion.
type Report struct {
	// Profiles are the successfully loaded profiles, in file-name order.
	Profiles []*profile.Profile
	// Quarantined are the files excluded from the analysis, in file-name
	// order.
	Quarantined []Quarantined
	// Warnings are degradation notes produced by Gate: the set is still
	// modelable, but less robust than a complete campaign.
	Warnings []string
	// Dir and Format record what was loaded.
	Dir    string
	Format string
}

// LoadDir loads every profile of the given format ("json" or "csv") from
// dir under the options' policy. An unreadable directory or an unknown
// format is an error under either policy; per-file failures are
// quarantined (Lenient) or returned immediately (Strict).
func LoadDir(dir, format string, opts Options) (*Report, error) {
	var ext string
	switch format {
	case "json":
		ext = ".json"
	case "csv":
		ext = ".csv"
	default:
		return nil, fmt.Errorf("ingest: unknown profile format %q (have json, csv)", format)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: listing %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ext) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	rep := &Report{Dir: dir, Format: format}
	seen := make(map[identity]string, len(names))
	for _, name := range names {
		path := filepath.Join(dir, name)
		p, stage, err := loadFile(path, format)
		if err == nil {
			id := identityOf(p)
			if prev, dup := seen[id]; dup {
				stage = StageValidate
				err = fmt.Errorf("duplicate profile: %s already provides %s x%s rank %d rep %d",
					prev, p.App, measurement.Point(p.Config).Key(), p.Rank, p.Rep)
			} else {
				seen[id] = path
			}
		}
		if err != nil {
			q := Quarantined{Path: path, Stage: stage, Err: err}
			if opts.Policy == Strict {
				return nil, fmt.Errorf("ingest: %w", q)
			}
			rep.Quarantined = append(rep.Quarantined, q)
			continue
		}
		rep.Profiles = append(rep.Profiles, p)
	}
	return rep, nil
}

// identity is the uniqueness key of a profile within a campaign.
type identity struct {
	app   string
	point string
	rank  int
	rep   int
}

func identityOf(p *profile.Profile) identity {
	return identity{app: p.App, point: measurement.Point(p.Config).Key(), rank: p.Rank, rep: p.Rep}
}

// loadFile loads one profile file and classifies any failure by stage.
func loadFile(path, format string) (*profile.Profile, Stage, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, StageRead, err
	}
	return DecodeBytes(data, format)
}

// DecodeBytes decodes and validates one profile held in memory,
// classifying any failure with the same read/decode/validate stages
// LoadDir uses for on-disk files. It is the validation entry point for
// callers that receive profile bytes over a transport (edserve uploads)
// rather than from the filesystem: a rejected upload carries the exact
// stage a directory ingestion would have quarantined it under.
func DecodeBytes(data []byte, format string) (*profile.Profile, Stage, error) {
	if format == "json" {
		var p profile.Profile
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, StageDecode, err
		}
		if err := p.Validate(); err != nil {
			return nil, StageValidate, err
		}
		return &p, 0, nil
	}
	p, err := importer.ReadCSV(strings.NewReader(string(data)))
	if err != nil {
		if errors.Is(err, importer.ErrFormat) {
			return nil, StageDecode, err
		}
		return nil, StageValidate, err
	}
	return p, 0, nil
}

// Gate applies the degradation policy to the loaded set: it decides
// whether the surviving profiles are still modelable. On success it
// records warnings on the report (configurations that lost repetitions or
// disappeared entirely); on failure it returns a single aggregate error
// that names every quarantined file, so the operator sees the full damage
// in one message.
func (r *Report) Gate(opts Options) error {
	if len(r.Profiles) == 0 {
		base := fmt.Errorf("ingest: no usable profiles in %s (%d file(s) quarantined)", r.Dir, len(r.Quarantined))
		return r.aggregate(base)
	}
	groups := profile.GroupByConfig(r.Profiles)
	keys := profile.SortedKeys(groups)

	perApp := map[string]int{}
	for _, k := range keys {
		perApp[k.App]++
	}
	apps := make([]string, 0, len(perApp))
	for app := range perApp {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	var errs []error
	for _, app := range apps {
		if n := perApp[app]; n < opts.minConfigs() {
			errs = append(errs, fmt.Errorf(
				"ingest: %s has %d usable configuration(s) after quarantine; modeling needs at least %d",
				app, n, opts.minConfigs()))
		}
	}
	if len(errs) > 0 {
		return r.aggregate(errs...)
	}

	// The set is modelable; degrade gracefully with visible warnings.
	r.Warnings = r.Warnings[:0]

	// Configurations whose files were all quarantined: recover the
	// identity from the canonical file name where possible.
	alive := make(map[profile.ConfigKey]bool, len(keys))
	for _, k := range keys {
		alive[k] = true
	}
	lost := map[profile.ConfigKey]bool{}
	for _, q := range r.Quarantined {
		app, config, _, _, ok := profile.ParseFileName(q.Path)
		if !ok {
			continue
		}
		key := profile.ConfigKey{App: app, Point: measurement.Point(config).Key()}
		if !alive[key] && !lost[key] {
			lost[key] = true
			r.Warnings = append(r.Warnings, fmt.Sprintf(
				"configuration %s %s lost every profile to quarantine and is excluded from the model",
				key.App, key.Point))
		}
	}

	// Configurations that survived with fewer repetitions than the rest
	// of the campaign: the medians there rest on thinner evidence.
	maxReps := 0
	reps := make(map[profile.ConfigKey]int, len(keys))
	for _, k := range keys {
		distinct := map[int]bool{}
		for _, p := range groups[k] {
			distinct[p.Rep] = true
		}
		reps[k] = len(distinct)
		if len(distinct) > maxReps {
			maxReps = len(distinct)
		}
	}
	for _, k := range keys {
		if reps[k] < maxReps {
			r.Warnings = append(r.Warnings, fmt.Sprintf(
				"configuration %s %s has only %d repetition(s) while others have %d: its medians are less robust",
				k.App, k.Point, reps[k], maxReps))
		}
	}
	return nil
}

// GateError is the structured form of a gate refusal: the surviving set
// is not modelable, and the error names why (per-application refusals)
// plus every quarantined file with its typed loading stage. Historically
// this was an opaque errors.Join whose per-file stage classification
// survived only as text once callers wrapped it; the typed Quarantined
// field keeps the classification reachable through any number of
// fmt.Errorf("%w") wrappers via errors.As, so transports (edserve) can
// map quarantine stages to distinct error bodies. The rendered text is
// identical to the historical errors.Join output.
type GateError struct {
	// Refusals are the gate's own errors: the no-usable-profiles refusal
	// or one modelability refusal per application below the minimum.
	Refusals []error
	// Quarantined are the excluded files, in file-name order, each with
	// its typed Stage (read / decode / validate).
	Quarantined []Quarantined
}

// Error renders one line per refusal and per quarantined file, matching
// errors.Join's layout.
func (e *GateError) Error() string {
	var b strings.Builder
	for i, err := range e.Refusals {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(err.Error())
	}
	for i, q := range e.Quarantined {
		if i > 0 || len(e.Refusals) > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(q.Error())
	}
	return b.String()
}

// Unwrap exposes every refusal and quarantine entry to errors.Is/As.
func (e *GateError) Unwrap() []error {
	all := make([]error, 0, len(e.Refusals)+len(e.Quarantined))
	all = append(all, e.Refusals...)
	for _, q := range e.Quarantined {
		all = append(all, q)
	}
	return all
}

// aggregate builds the gate's structured multi-error from its own
// refusals plus one entry per quarantined file.
func (r *Report) aggregate(errs ...error) error {
	return &GateError{
		Refusals:    append([]error(nil), errs...),
		Quarantined: append([]Quarantined(nil), r.Quarantined...),
	}
}

// Summary renders the quarantine outcome for terminal output; it is empty
// when every file loaded cleanly.
func (r *Report) Summary() string {
	if len(r.Quarantined) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "quarantined %d of %d profile file(s):\n",
		len(r.Quarantined), len(r.Quarantined)+len(r.Profiles))
	for _, q := range r.Quarantined {
		fmt.Fprintf(&b, "  %s [%s stage]: %v\n", q.Path, q.Stage, q.Err)
	}
	return b.String()
}
