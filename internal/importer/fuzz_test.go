package importer

import (
	"math"
	"strings"
	"testing"

	"extradeep/internal/faults"
	"extradeep/internal/profile"
)

// nonFiniteProfile reports whether any numeric field is NaN/Inf.
func nonFiniteProfile(p *profile.Profile) bool {
	bad := func(vs ...float64) bool {
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		return false
	}
	if bad(p.WallTime) || bad(p.Config...) {
		return true
	}
	for _, e := range p.Trace.Events {
		if bad(e.Start, e.Duration, e.Bytes) {
			return true
		}
	}
	for _, s := range p.Trace.Steps {
		if bad(s.Start, s.End) {
			return true
		}
	}
	for _, ep := range p.Trace.Epochs {
		if bad(ep.Start, ep.End) {
			return true
		}
	}
	return false
}

// FuzzReadCSV asserts the interchange-format invariant on arbitrary
// input: ReadCSV returns either a valid, all-finite profile or an error —
// it never panics and never smuggles NaN/Inf into the pipeline, no matter
// how a foreign converter mangled its export.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte(sampleCSV))
	for _, k := range faults.Kinds() {
		mutated, err := faults.Apply(k, []byte(sampleCSV), "csv")
		if err != nil {
			f.Fatal(err)
		}
		f.Add(mutated)
	}
	f.Add([]byte("# extradeep-csv v1\n# config=NaN\n"))
	f.Add([]byte("# extradeep-csv v1\n# wall=Inf\nevent,x,cuda,cp,0,1,,\n"))
	f.Add([]byte("# extradeep-csv v1\nevent,x,cuda,cp,NaN,1,,\n"))
	f.Add([]byte("# extradeep-csv v1\nstep,0,0,train,Inf,NaN\n"))
	f.Add([]byte("# extradeep-csv v1\nevent,x,cuda,cp,0,1,-5,-3\n"))
	f.Add([]byte("\"quoted\nmultiline\",oops"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadCSV(strings.NewReader(string(data)))
		if err != nil {
			return // rejected input: the other half of the invariant
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("ReadCSV accepted an invalid profile: %v", verr)
		}
		if nonFiniteProfile(p) {
			t.Fatalf("ReadCSV smuggled a non-finite value: %+v", p)
		}
	})
}
