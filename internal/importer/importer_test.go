package importer

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"extradeep/internal/calltree"
	"extradeep/internal/mathutil"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
	"extradeep/internal/trace"
)

const sampleCSV = `# extradeep-csv v1
# app=cifar10
# params=p
# config=4
# rank=0
# rep=1
# wall=12.5
# sampled=true
record,a,b,c,d,e,f,g
epoch,0,0.0,0.2,,,,
step,0,0,train,0.0,0.1,,
step,0,1,validation,0.1,0.2,,
event,EigenMetaKernel,cuda,App->train->EigenMetaKernel,0.01,0.05,0,1
event,MPI_Allreduce,mpi,App->train->MPI_Allreduce,0.06,0.02,0,1
event,Memcpy HtoD,memcpy,App->train->Memcpy HtoD,0.005,0.001,4096,1
`

func TestReadCSVBasic(t *testing.T) {
	p, err := ReadCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if p.App != "cifar10" || p.Rank != 0 || p.Rep != 1 || !p.Sampled {
		t.Errorf("metadata wrong: %+v", p)
	}
	if len(p.Config) != 1 || !mathutil.Close(p.Config[0], 4) {
		t.Errorf("config = %v", p.Config)
	}
	if !mathutil.Close(p.WallTime, 12.5) {
		t.Errorf("wall = %v", p.WallTime)
	}
	if len(p.Trace.Events) != 3 || len(p.Trace.Steps) != 2 || len(p.Trace.Epochs) != 1 {
		t.Fatalf("trace sizes: %d events, %d steps, %d epochs",
			len(p.Trace.Events), len(p.Trace.Steps), len(p.Trace.Epochs))
	}
	if p.Trace.Steps[1].Phase != trace.PhaseValidation {
		t.Error("validation phase lost")
	}
	if !mathutil.Close(p.Trace.Events[1].Bytes, 4096) { // sorted by start: memcpy at 0.005 is index 0
		// events sorted by start: Memcpy(0.005), Eigen(0.01), MPI(0.06)
		t.Logf("events: %+v", p.Trace.Events)
	}
}

func TestReadCSVClassifiesUnknownKinds(t *testing.T) {
	csvText := strings.Replace(sampleCSV, "MPI_Allreduce,mpi,", "MPI_Allreduce,???,", 1)
	p, err := ReadCSV(strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range p.Trace.Events {
		if e.Name == "MPI_Allreduce" && e.Kind != calltree.KindMPI {
			t.Errorf("kind = %v, want MPI (classified from name)", e.Kind)
		}
	}
}

func TestReadCSVRejectsMissingMagic(t *testing.T) {
	noMagic := strings.Replace(sampleCSV, "# extradeep-csv v1\n", "", 1)
	if _, err := ReadCSV(strings.NewReader(noMagic)); !errors.Is(err, ErrFormat) {
		t.Errorf("err = %v, want ErrFormat", err)
	}
}

func TestReadCSVRejectsUnknownRecord(t *testing.T) {
	bad := sampleCSV + "frobnicate,1,2,3\n"
	if _, err := ReadCSV(strings.NewReader(bad)); !errors.Is(err, ErrFormat) {
		t.Errorf("err = %v, want ErrFormat", err)
	}
}

func TestReadCSVRejectsBadNumbers(t *testing.T) {
	cases := []string{
		"event,x,cuda,cp,notanumber,0.1,,\n",
		"event,x,cuda,cp,0.0,notanumber,,\n",
		"step,zero,0,train,0,1\n",
		"epoch,0,bad,1\n",
	}
	for _, line := range cases {
		if _, err := ReadCSV(strings.NewReader(sampleCSV + line)); err == nil {
			t.Errorf("accepted bad line %q", line)
		}
	}
}

// TestReadCSVErrorsCarryFileLine pins the error-location contract: every
// malformed line is reported with its 1-based line number in the original
// input, not its position in the comment-stripped CSV body.
func TestReadCSVErrorsCarryFileLine(t *testing.T) {
	cases := []struct {
		name     string
		input    string
		wantLine string
	}{
		{
			"bad metadata value",
			"# extradeep-csv v1\n# app=x\n# config=oops\n",
			"line 3",
		},
		{
			// sampleCSV has 15 lines (8 metadata lines, the column
			// header and 6 records); the appended bad record is line 16.
			"bad record after header",
			sampleCSV + "event,x,cuda,cp,notanumber,0.1,,\n",
			"line 16",
		},
		{
			"unknown record type",
			sampleCSV + "frobnicate,1,2,3\n",
			"line 16",
		},
		{
			"bare quote",
			sampleCSV + "event,\"x\"y,cuda,cp,0,0.1,,\n",
			"line 16",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(c.input))
			if err == nil {
				t.Fatal("malformed input accepted")
			}
			if !errors.Is(err, ErrFormat) {
				t.Errorf("err = %v, want ErrFormat", err)
			}
			if !strings.Contains(err.Error(), c.wantLine) {
				t.Errorf("error %q does not carry %q", err, c.wantLine)
			}
		})
	}
}

func TestReadCSVFileErrorCarriesPathAndLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.csv")
	bad := sampleCSV + "event,x,cuda,cp,0.0,notanumber,,\n"
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadCSVFile(path)
	if err == nil {
		t.Fatal("broken file accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, path) || !strings.Contains(msg, "line 16") {
		t.Errorf("error lacks path:line location: %v", msg)
	}
}

func TestReadCSVRejectsNonFiniteMetrics(t *testing.T) {
	cases := []string{
		"event,x,cuda,cp,NaN,0.1,,\n",
		"event,x,cuda,cp,0.3,Inf,,\n",
		"event,x,cuda,cp,0.3,0.01,NaN,\n",
		"step,0,2,train,NaN,NaN\n",
	}
	for _, line := range cases {
		if _, err := ReadCSV(strings.NewReader(sampleCSV + line)); err == nil {
			t.Errorf("non-finite metric accepted: %q", line)
		}
	}
	// Non-finite metadata is rejected too.
	for _, meta := range []string{"# config=NaN\n", "# wall=NaN\n"} {
		if _, err := ReadCSV(strings.NewReader(sampleCSV + meta)); err == nil {
			t.Errorf("non-finite metadata accepted: %q", meta)
		}
	}
}

func TestReadCSVRejectsUnnamedEvent(t *testing.T) {
	bad := sampleCSV + "event,,cuda,cp,0.0,0.1,,\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("unnamed event accepted")
	}
}

func TestReadCSVRejectsInvalidProfile(t *testing.T) {
	// Step escaping its epoch fails trace validation.
	bad := sampleCSV + "step,0,2,train,0.2,99.0\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	orig, err := ReadCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != orig.App || len(got.Trace.Events) != len(orig.Trace.Events) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range got.Trace.Events {
		a, b := got.Trace.Events[i], orig.Trace.Events[i]
		//edlint:ignore floateq round-trip comparison: re-imported events must preserve every field bit-for-bit
		if a.Name != b.Name || a.Kind != b.Kind || a.Start != b.Start || a.Duration != b.Duration || a.Bytes != b.Bytes {
			t.Errorf("event %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestRoundTripSimulatedProfile(t *testing.T) {
	// A full simulated profile survives the CSV round trip.
	b, err := engine.ByName("imdb")
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.RunConfig{
		System: hardware.DEEP(), Strategy: parallel.DataParallel{},
		Ranks: 4, WeakScaling: true, Seed: 3, SampleRanks: 1,
	}
	profiles, err := engine.Profile(b, cfg, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, profiles[0]); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Trace.Events) != len(profiles[0].Trace.Events) {
		t.Errorf("events: %d vs %d", len(got.Trace.Events), len(profiles[0].Trace.Events))
	}
	if len(got.Trace.Steps) != len(profiles[0].Trace.Steps) {
		t.Errorf("steps: %d vs %d", len(got.Trace.Steps), len(profiles[0].Trace.Steps))
	}
}

func TestImportDir(t *testing.T) {
	dir := t.TempDir()
	orig, err := ReadCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	for i, rank := range []int{1, 0} {
		orig.Rank = rank
		orig.Trace.Rank = rank
		var buf bytes.Buffer
		if err := WriteCSV(&buf, orig); err != nil {
			t.Fatal(err)
		}
		name := filepath.Join(dir, []string{"b.csv", "a.csv"}[i])
		if err := os.WriteFile(name, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A non-CSV file must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	profiles, err := ImportDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("imported %d, want 2", len(profiles))
	}
	// Sorted by file name: a.csv (rank 0) first.
	if profiles[0].Rank != 0 {
		t.Error("directory import not sorted")
	}
}

func TestImportDirMissing(t *testing.T) {
	if _, err := ImportDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing dir accepted")
	}
}

func TestReadCSVFileMissing(t *testing.T) {
	if _, err := ReadCSVFile(filepath.Join(t.TempDir(), "nope.csv")); err == nil {
		t.Error("missing file accepted")
	}
}
