// Package importer reads profiles from foreign profiling tools. The paper
// states that Extra-Deep "supports measurements from other profiling tools
// such as Score-P, or any CUPTI-based performance profiler"; this package
// implements that interoperability through a documented CSV interchange
// format that such tools' exports can be converted to:
//
//	# extradeep-csv v1
//	# app=cifar10
//	# params=p
//	# config=4
//	# rank=0
//	# rep=1
//	# wall=12.5
//	# sampled=true
//	record,a,b,c,d,e,f,g
//	event,EigenMetaKernel,cuda,App->train->EigenMetaKernel,0.010,0.050,0,1
//	step,0,0,train,0.0,0.1,,
//	epoch,0,0.0,0.1,,,,
//
// Record types:
//
//	event,<name>,<kind>,<callpath>,<start>,<duration>,<bytes>,<count>
//	step,<epoch>,<index>,<phase>,<start>,<end>
//	epoch,<index>,<start>,<end>
//
// Kinds use the calltree names (cuda, cudnn, cublas, mpi, nccl, memcpy,
// memset, os, nvtx, cudaapi); unknown kind names are classified from the
// kernel name. Phases are "train" or "validation".
package importer

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"extradeep/internal/calltree"
	"extradeep/internal/profile"
	"extradeep/internal/trace"
)

// ErrFormat reports a malformed CSV profile.
var ErrFormat = errors.New("importer: malformed CSV profile")

// ReadCSV parses one CSV profile. Errors wrap ErrFormat where the input is
// malformed and always name the 1-based line of the original input the
// problem was found on, so a caller that knows the file name (ReadCSVFile)
// can report an exact path:line location.
func ReadCSV(r io.Reader) (*profile.Profile, error) {
	p := &profile.Profile{Rep: 1}
	br := bufio.NewReader(r)

	// Metadata comment lines precede the CSV body. Body lines keep their
	// original line numbers in bodyLines so record-level errors can point
	// into the file rather than into the comment-stripped body.
	var body strings.Builder
	var bodyLines []int
	sawMagic := false
	lineNo := 0
	for {
		line, err := br.ReadString('\n')
		if len(line) > 0 {
			lineNo++
			trimmed := strings.TrimSpace(line)
			switch {
			case strings.HasPrefix(trimmed, "#"):
				meta := strings.TrimSpace(strings.TrimPrefix(trimmed, "#"))
				if meta == "extradeep-csv v1" {
					sawMagic = true
				} else if key, val, ok := strings.Cut(meta, "="); ok {
					if err := applyMeta(p, strings.TrimSpace(key), strings.TrimSpace(val)); err != nil {
						return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, lineNo, err)
					}
				}
			case trimmed == "":
				// skip blank lines
			default:
				body.WriteString(line)
				if !strings.HasSuffix(line, "\n") {
					body.WriteString("\n")
				}
				bodyLines = append(bodyLines, lineNo)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("importer: reading: %w", err)
		}
	}
	if !sawMagic {
		return nil, fmt.Errorf("%w: missing '# extradeep-csv v1' header", ErrFormat)
	}

	// fileLine maps a 1-based body line back to its original input line.
	fileLine := func(bodyLine int) int {
		if bodyLine >= 1 && bodyLine <= len(bodyLines) {
			return bodyLines[bodyLine-1]
		}
		return lineNo
	}

	cr := csv.NewReader(strings.NewReader(body.String()))
	cr.FieldsPerRecord = -1
	for i := 0; ; i++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			at := i + 1
			var pe *csv.ParseError
			if errors.As(err, &pe) {
				at = pe.StartLine
			}
			return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, fileLine(at), err)
		}
		if len(rec) == 0 {
			continue
		}
		recLine, _ := cr.FieldPos(0)
		kind := strings.TrimSpace(rec[0])
		if i == 0 && kind == "record" {
			continue // column header
		}
		switch kind {
		case "event":
			if err := parseEvent(p, rec); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, fileLine(recLine), err)
			}
		case "step":
			if err := parseStep(p, rec); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, fileLine(recLine), err)
			}
		case "epoch":
			if err := parseEpoch(p, rec); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, fileLine(recLine), err)
			}
		default:
			return nil, fmt.Errorf("%w: line %d: unknown record type %q", ErrFormat, fileLine(recLine), kind)
		}
	}
	p.Trace.Rank = p.Rank
	p.Trace.Sort()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// applyMeta applies one "# key=value" metadata line. Its errors carry no
// location; ReadCSV wraps them with ErrFormat and the offending line.
func applyMeta(p *profile.Profile, key, val string) error {
	switch key {
	case "app":
		p.App = val
	case "params":
		p.Params = splitNonEmpty(val)
	case "config":
		for _, part := range splitNonEmpty(val) {
			v, err := strconv.ParseFloat(part, 64)
			if err != nil {
				return fmt.Errorf("bad config value %q", part)
			}
			p.Config = append(p.Config, v)
		}
	case "rank":
		v, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("bad rank %q", val)
		}
		p.Rank = v
	case "rep":
		v, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("bad rep %q", val)
		}
		p.Rep = v
	case "wall":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("bad wall time %q", val)
		}
		p.WallTime = v
	case "sampled":
		p.Sampled = val == "true" || val == "1"
	}
	return nil
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if t := strings.TrimSpace(part); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func parseEvent(p *profile.Profile, rec []string) error {
	if len(rec) < 6 {
		return errors.New("event needs name, kind, callpath, start, duration")
	}
	name := strings.TrimSpace(rec[1])
	if name == "" {
		return errors.New("event without name")
	}
	kind := calltree.ParseKind(strings.TrimSpace(rec[2]))
	if kind == calltree.KindUnknown {
		kind = calltree.ClassifyKernelName(name)
	}
	start, err := strconv.ParseFloat(strings.TrimSpace(rec[4]), 64)
	if err != nil {
		return fmt.Errorf("bad start: %v", err)
	}
	dur, err := strconv.ParseFloat(strings.TrimSpace(rec[5]), 64)
	if err != nil {
		return fmt.Errorf("bad duration: %v", err)
	}
	ev := trace.Event{
		Name:     name,
		Kind:     kind,
		Callpath: strings.TrimSpace(rec[3]),
		Start:    start,
		Duration: dur,
	}
	if len(rec) > 6 && strings.TrimSpace(rec[6]) != "" {
		if ev.Bytes, err = strconv.ParseFloat(strings.TrimSpace(rec[6]), 64); err != nil {
			return fmt.Errorf("bad bytes: %v", err)
		}
	}
	if len(rec) > 7 && strings.TrimSpace(rec[7]) != "" {
		if ev.Count, err = strconv.Atoi(strings.TrimSpace(rec[7])); err != nil {
			return fmt.Errorf("bad count: %v", err)
		}
	}
	p.Trace.Events = append(p.Trace.Events, ev)
	return nil
}

func parseStep(p *profile.Profile, rec []string) error {
	if len(rec) < 6 {
		return errors.New("step needs epoch, index, phase, start, end")
	}
	epochIdx, err := strconv.Atoi(strings.TrimSpace(rec[1]))
	if err != nil {
		return fmt.Errorf("bad epoch: %v", err)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(rec[2]))
	if err != nil {
		return fmt.Errorf("bad index: %v", err)
	}
	phase := trace.PhaseTrain
	switch strings.TrimSpace(rec[3]) {
	case "train", "":
	case "validation":
		phase = trace.PhaseValidation
	default:
		return fmt.Errorf("unknown phase %q", rec[3])
	}
	start, err := strconv.ParseFloat(strings.TrimSpace(rec[4]), 64)
	if err != nil {
		return fmt.Errorf("bad start: %v", err)
	}
	end, err := strconv.ParseFloat(strings.TrimSpace(rec[5]), 64)
	if err != nil {
		return fmt.Errorf("bad end: %v", err)
	}
	p.Trace.Steps = append(p.Trace.Steps, trace.StepSpan{
		Epoch: epochIdx, Index: idx, Phase: phase, Start: start, End: end,
	})
	return nil
}

func parseEpoch(p *profile.Profile, rec []string) error {
	if len(rec) < 4 {
		return errors.New("epoch needs index, start, end")
	}
	idx, err := strconv.Atoi(strings.TrimSpace(rec[1]))
	if err != nil {
		return fmt.Errorf("bad index: %v", err)
	}
	start, err := strconv.ParseFloat(strings.TrimSpace(rec[2]), 64)
	if err != nil {
		return fmt.Errorf("bad start: %v", err)
	}
	end, err := strconv.ParseFloat(strings.TrimSpace(rec[3]), 64)
	if err != nil {
		return fmt.Errorf("bad end: %v", err)
	}
	p.Trace.Epochs = append(p.Trace.Epochs, trace.EpochSpan{Index: idx, Start: start, End: end})
	return nil
}

// WriteCSV serializes a profile into the interchange format, so simulated
// profiles can serve as conversion templates and round-trip tests.
func WriteCSV(w io.Writer, p *profile.Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# extradeep-csv v1")
	fmt.Fprintf(bw, "# app=%s\n", p.App)
	fmt.Fprintf(bw, "# params=%s\n", strings.Join(p.Params, ","))
	configs := make([]string, len(p.Config))
	for i, v := range p.Config {
		configs[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	fmt.Fprintf(bw, "# config=%s\n", strings.Join(configs, ","))
	fmt.Fprintf(bw, "# rank=%d\n", p.Rank)
	fmt.Fprintf(bw, "# rep=%d\n", p.Rep)
	fmt.Fprintf(bw, "# wall=%g\n", p.WallTime)
	fmt.Fprintf(bw, "# sampled=%v\n", p.Sampled)
	cw := csv.NewWriter(bw)
	for _, e := range p.Trace.Epochs {
		if err := cw.Write([]string{"epoch", strconv.Itoa(e.Index), g(e.Start), g(e.End)}); err != nil {
			return err
		}
	}
	for _, s := range p.Trace.Steps {
		if err := cw.Write([]string{"step", strconv.Itoa(s.Epoch), strconv.Itoa(s.Index), s.Phase.String(), g(s.Start), g(s.End)}); err != nil {
			return err
		}
	}
	for _, e := range p.Trace.Events {
		if err := cw.Write([]string{
			"event", e.Name, e.Kind.String(), e.Callpath,
			g(e.Start), g(e.Duration), g(e.Bytes), strconv.Itoa(e.Count),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ReadCSVFile loads one CSV profile from disk.
func ReadCSVFile(path string) (*profile.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("importer: %w", err)
	}
	defer f.Close()
	p, err := ReadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("importer: %s: %w", path, err)
	}
	return p, nil
}

// ImportDir loads every .csv profile in a directory, sorted by file name.
func ImportDir(dir string) ([]*profile.Profile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("importer: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make([]*profile.Profile, 0, len(names))
	for _, name := range names {
		p, err := ReadCSVFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
