// Package report assembles experiment outputs — monospace result tables
// and inline SVG figures — into a single self-contained HTML document, the
// shareable artifact of a reproduction run.
package report

import (
	"fmt"
	"html/template"
	"strings"
	"time"
)

// Section is one experiment's contribution to the report.
type Section struct {
	// Title heads the section.
	Title string
	// Text is preformatted (monospace) content, e.g. a result table.
	Text string
	// SVGs are inline figures, already rendered.
	SVGs []string
	// Elapsed optionally records the generation time.
	Elapsed time.Duration
}

// Report is a collection of sections with a title page.
type Report struct {
	// Title heads the document.
	Title string
	// Subtitle appears under the title.
	Subtitle string
	// Sections are rendered in order.
	Sections []Section
}

// Add appends a section.
func (r *Report) Add(s Section) { r.Sections = append(r.Sections, s) }

var pageTemplate = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 64rem; padding: 0 1rem; color: #1a1a1a; }
h1 { font-size: 1.6rem; border-bottom: 2px solid #0072b2; padding-bottom: .4rem; }
h2 { font-size: 1.2rem; margin-top: 2.2rem; color: #0072b2; }
pre { background: #f6f8fa; border: 1px solid #e1e4e8; border-radius: 6px; padding: 1rem; overflow-x: auto; font-size: .82rem; line-height: 1.35; }
.subtitle { color: #555; margin-top: -0.6rem; }
.elapsed { color: #888; font-size: .8rem; }
figure { margin: 1rem 0; text-align: center; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
{{if .Subtitle}}<p class="subtitle">{{.Subtitle}}</p>{{end}}
{{range .Sections}}
<h2>{{.Title}}</h2>
{{if .Text}}<pre>{{.Text}}</pre>{{end}}
{{range .SVGs}}<figure>{{.}}</figure>{{end}}
{{if .ElapsedString}}<p class="elapsed">generated in {{.ElapsedString}}</p>{{end}}
{{end}}
</body>
</html>
`))

// templateSection is the template-facing view of a Section with the SVG
// bodies marked as trusted HTML (they are produced by our own renderer).
type templateSection struct {
	Title         string
	Text          string
	SVGs          []template.HTML
	ElapsedString string
}

// templateReport mirrors Report for the template.
type templateReport struct {
	Title    string
	Subtitle string
	Sections []templateSection
}

// HTML renders the report document.
func (r *Report) HTML() (string, error) {
	tr := templateReport{Title: r.Title, Subtitle: r.Subtitle}
	for _, s := range r.Sections {
		ts := templateSection{Title: s.Title, Text: s.Text}
		for _, svg := range s.SVGs {
			if !strings.HasPrefix(strings.TrimSpace(svg), "<svg") {
				return "", fmt.Errorf("report: section %q contains a non-SVG figure", s.Title)
			}
			ts.SVGs = append(ts.SVGs, template.HTML(svg))
		}
		if s.Elapsed > 0 {
			ts.ElapsedString = s.Elapsed.Round(time.Millisecond).String()
		}
		tr.Sections = append(tr.Sections, ts)
	}
	var b strings.Builder
	if err := pageTemplate.Execute(&b, tr); err != nil {
		return "", fmt.Errorf("report: rendering: %w", err)
	}
	return b.String(), nil
}
