package report

import (
	"strings"
	"testing"
	"time"
)

func TestHTMLBasicStructure(t *testing.T) {
	r := &Report{Title: "Extra-Deep reproduction", Subtitle: "seed 7"}
	r.Add(Section{
		Title:   "Figure 8",
		Text:    "benchmark  savings\ncifar10    97.1%",
		SVGs:    []string{`<svg xmlns="http://www.w3.org/2000/svg"><rect/></svg>`},
		Elapsed: 1234 * time.Millisecond,
	})
	html, err := r.HTML()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<!DOCTYPE html>",
		"Extra-Deep reproduction",
		"seed 7",
		"<h2>Figure 8</h2>",
		"cifar10    97.1%",
		"<svg xmlns",
		"1.234s",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
}

func TestHTMLEscapesText(t *testing.T) {
	r := &Report{Title: "t"}
	r.Add(Section{Title: "x", Text: `<script>alert(1)</script>`})
	html, err := r.HTML()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(html, "<script>alert") {
		t.Error("text not escaped")
	}
	if !strings.Contains(html, "&lt;script&gt;") {
		t.Error("escaped form missing")
	}
}

func TestHTMLSVGPassedThrough(t *testing.T) {
	r := &Report{Title: "t"}
	r.Add(Section{Title: "fig", SVGs: []string{`<svg><circle r="3"/></svg>`}})
	html, err := r.HTML()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html, `<circle r="3"/>`) {
		t.Error("SVG was escaped instead of embedded")
	}
}

func TestHTMLRejectsNonSVGFigure(t *testing.T) {
	r := &Report{Title: "t"}
	r.Add(Section{Title: "fig", SVGs: []string{`<img src=x onerror=alert(1)>`}})
	if _, err := r.HTML(); err == nil {
		t.Error("non-SVG figure accepted")
	}
}

func TestHTMLEmptyReport(t *testing.T) {
	r := &Report{Title: "empty"}
	html, err := r.HTML()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html, "empty") {
		t.Error("title missing")
	}
}

func TestHTMLSectionOrder(t *testing.T) {
	r := &Report{Title: "t"}
	r.Add(Section{Title: "first"})
	r.Add(Section{Title: "second"})
	html, err := r.HTML()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Index(html, "first") > strings.Index(html, "second") {
		t.Error("sections out of order")
	}
}
