// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4) on the simulated substrate: the CIFAR-10 case
// study of Sections 2–3, the parallel-strategy comparison (Fig. 5), the
// system comparison (Fig. 6), the per-benchmark predictive power (Fig. 7),
// the profiling-overhead study (Fig. 8), the per-model-type accuracy table
// (Table 2), the cost-effectiveness example (Fig. 4b), and the headline
// accuracy summary of Section 4.3. Each experiment returns a result struct
// with the raw numbers plus a Render method producing the report table.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"extradeep/internal/core"
	"extradeep/internal/mathutil"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

// DEEP modeling/evaluation node sets (Section 4.1: one rank per node).
var (
	deepModelingRanks = []int{2, 4, 6, 8, 10}
	deepEvalRanks     = []int{12, 16, 24, 32, 40, 48, 56, 64}
)

// JURECA rank sets (Section 4.1: four ranks per node; the paper models at
// x1 = {8,…,40} and evaluates up to 256 ranks = 64 nodes).
var (
	jurecaModelingRanks = []int{8, 16, 24, 32, 40}
	jurecaEvalRanks     = []int{48, 64, 96, 128, 160, 192, 224, 256}
)

// modelingRanksFor returns the modeling/evaluation rank sets of a system.
func modelingRanksFor(sys hardware.System) (modeling, eval []int) {
	if sys.Name == "JURECA" {
		return jurecaModelingRanks, jurecaEvalRanks
	}
	return deepModelingRanks, deepEvalRanks
}

// nodesOf converts a rank count to the node count shown on the paper's
// x-axes.
func nodesOf(sys hardware.System, ranks int) int { return sys.NodesFor(ranks) }

// campaign builds the standard campaign for one (benchmark, system,
// strategy, scaling-mode) cell of the evaluation.
func campaign(b engine.Benchmark, sys hardware.System, strat parallel.Strategy, weak bool, seed int64) core.Campaign {
	mod, eval := modelingRanksFor(sys)
	return core.Campaign{
		Benchmark: b,
		Config: engine.RunConfig{
			System:      sys,
			Strategy:    strat,
			WeakScaling: weak,
			Seed:        seed,
			SampleRanks: 4,
		},
		ModelingRanks: mod,
		EvalRanks:     eval,
		Reps:          5,
	}
}

// feasibleRanks filters rank counts that yield at least one training step
// per epoch (strong scaling runs out of batches at extreme scale).
func feasibleRanks(b engine.Benchmark, strat parallel.Strategy, weak bool, ranks []int) []int {
	var out []int
	for _, r := range ranks {
		if engine.EpochParams(b, strat, r, weak).TrainSteps() >= 1 {
			out = append(out, r)
		}
	}
	return out
}

// runCell runs one campaign cell, handling strong-scaling feasibility by
// trimming eval points. Returns nil (no error) when fewer than the
// minimum modeling points remain feasible.
func runCell(b engine.Benchmark, sys hardware.System, strat parallel.Strategy, weak bool, seed int64) (*core.CampaignResult, error) {
	c := campaign(b, sys, strat, weak, seed)
	c.ModelingRanks = feasibleRanks(b, strat, weak, c.ModelingRanks)
	c.EvalRanks = feasibleRanks(b, strat, weak, c.EvalRanks)
	if len(c.ModelingRanks) < 5 {
		return nil, nil
	}
	return core.RunCampaign(c)
}

// medianOf returns the median of xs (0 when empty).
func medianOf(xs []float64) float64 {
	m, _ := mathutil.Median(xs)
	return m
}

// sortedRankCounts returns the rank counts of m in increasing order.
// Per-node error buckets accumulate in this order; nodesOf can map two
// rank counts to one node, so iteration order would otherwise leak into
// the float summation order of downstream statistics.
func sortedRankCounts(m map[int][]float64) []int {
	ranks := make([]int, 0, len(m))
	for r := range m {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// sortedCallpaths returns m's callpath keys in sorted order, so model
// evaluation sweeps visit kernels deterministically.
func sortedCallpaths[V any](m map[string]V) []string {
	paths := make([]string, 0, len(m))
	for p := range m {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Table is a minimal text-table renderer used by all experiment reports.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// pct formats a percentage with one decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// secs formats seconds with two decimals.
func secs(v float64) string { return fmt.Sprintf("%.2f", v) }

// sortedIntKeys returns the sorted keys of an int-keyed map.
func sortedIntKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
