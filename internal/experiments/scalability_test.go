package experiments

import (
	"strings"
	"testing"

	"extradeep/internal/mathutil"
)

func TestScalabilityWeak(t *testing.T) {
	r, err := Scalability(7, "cifar10", true)
	if err != nil {
		t.Fatal(err)
	}
	if r.ScalingMode != "weak" {
		t.Errorf("mode = %s", r.ScalingMode)
	}
	// Weak scaling with overhead: runtime grows, speedup goes negative,
	// efficiency falls below 1.
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if last.Time <= first.Time {
		t.Error("weak-scaling runtime should grow")
	}
	if last.SpeedupPct >= 0 {
		t.Errorf("weak-scaling 'speedup' = %v, want negative", last.SpeedupPct)
	}
	if !mathutil.Close(first.Efficiency, 1) {
		t.Errorf("baseline efficiency = %v, want 1", first.Efficiency)
	}
	if last.Cost <= first.Cost {
		t.Error("cost should grow with allocation")
	}
	if !strings.Contains(r.Render(), "speedup model") {
		t.Error("render missing speedup model")
	}
}

func TestScalabilityStrong(t *testing.T) {
	r, err := Scalability(7, "imagenet", false)
	if err != nil {
		t.Fatal(err)
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if last.Time >= first.Time {
		t.Error("strong-scaling runtime should shrink")
	}
	if last.SpeedupPct <= 0 {
		t.Errorf("strong-scaling speedup = %v, want positive", last.SpeedupPct)
	}
	// Diminishing returns: efficiency at the far end below the baseline.
	if last.Efficiency >= 1 {
		t.Errorf("efficiency at scale = %v, want <1", last.Efficiency)
	}
}

func TestScalabilityChart(t *testing.T) {
	r, err := Scalability(7, "cifar10", true)
	if err != nil {
		t.Fatal(err)
	}
	svg, err := r.Chart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "training time per epoch") || !strings.Contains(svg, "core-h") {
		t.Error("chart missing series")
	}
}

func TestScalabilityUnknownBenchmark(t *testing.T) {
	if _, err := Scalability(7, "nope", true); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
