package experiments

import (
	"fmt"
	"strings"

	"extradeep/internal/epoch"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

// SummaryResult reproduces the headline numbers of Section 4.3: the
// average model accuracy (paper: 97.6%) over the modeling points and the
// average prediction accuracy (paper: 93.6%) at an evaluation point four
// times the largest modeling scale, across the training-time-per-epoch
// models of all benchmarks on DEEP under data parallelism (weak and
// strong scaling).
type SummaryResult struct {
	// ModelAccuracy is 100 − the mean percentage error at the modeling
	// points.
	ModelAccuracy float64
	// PredictionAccuracy is 100 − the mean percentage error at 4× the
	// largest modeling scale.
	PredictionAccuracy float64
	// PerBenchmark maps benchmark → (model accuracy, prediction
	// accuracy).
	PerBenchmark map[string][2]float64
}

// Summary computes the headline accuracy numbers.
func Summary(seed int64, benchNames ...string) (*SummaryResult, error) {
	sys := hardware.DEEP()
	strat := parallel.DataParallel{FusionBuckets: 4}
	out := &SummaryResult{PerBenchmark: make(map[string][2]float64)}
	var modelAccs, predAccs []float64
	for _, benchName := range benchNamesOrAll(benchNames) {
		b, err := engine.ByName(benchName)
		if err != nil {
			return nil, err
		}
		var benchModel, benchPred []float64
		for _, weak := range []bool{true, false} {
			res, err := runCell(b, sys, strat, weak, seed)
			if err != nil {
				return nil, fmt.Errorf("summary %s: %w", benchName, err)
			}
			if res == nil {
				continue
			}
			// Model accuracy at the modeling points.
			for _, ranks := range deepModelingRanks {
				if e, ok := res.PercentError(epoch.AppPath, ranks); ok {
					benchModel = append(benchModel, 100-e)
				}
			}
			// Prediction accuracy at 4× the largest modeling scale
			// (4 × 10 = 40 ranks).
			target := 4 * deepModelingRanks[len(deepModelingRanks)-1]
			if e, ok := res.PercentError(epoch.AppPath, target); ok {
				benchPred = append(benchPred, 100-e)
			}
		}
		if len(benchModel) == 0 {
			continue
		}
		ma := mean(benchModel)
		pa := mean(benchPred)
		out.PerBenchmark[benchName] = [2]float64{ma, pa}
		modelAccs = append(modelAccs, ma)
		if len(benchPred) > 0 {
			predAccs = append(predAccs, pa)
		}
	}
	out.ModelAccuracy = mean(modelAccs)
	out.PredictionAccuracy = mean(predAccs)
	return out, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Render formats the summary report.
func (r *SummaryResult) Render() string {
	var b strings.Builder
	b.WriteString("=== Section 4.3 headline numbers ===\n\n")
	t := &Table{Header: []string{"benchmark", "model accuracy", "prediction accuracy (4x scale)"}}
	for _, name := range []string{"cifar10", "cifar100", "imagenet", "imdb", "speechcommands"} {
		if acc, ok := r.PerBenchmark[name]; ok {
			t.AddRow(name, pct(acc[0]), pct(acc[1]))
		}
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\naverage model accuracy:      %s   [paper: 97.6%%]\n", pct(r.ModelAccuracy))
	fmt.Fprintf(&b, "average prediction accuracy: %s   [paper: 93.6%%]\n", pct(r.PredictionAccuracy))
	return b.String()
}
