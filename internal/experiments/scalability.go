package experiments

import (
	"fmt"
	"strings"

	"extradeep/internal/analysis"
	"extradeep/internal/epoch"
	"extradeep/internal/modeling"
	"extradeep/internal/plot"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

// ScalabilityPoint is one row of the scalability report.
type ScalabilityPoint struct {
	Ranks      float64
	Time       float64
	SpeedupPct float64
	Efficiency float64
	Cost       float64
}

// ScalabilityResult reproduces the Section 3.1–3.2 analyses for one
// benchmark: the speedup metric Δ (Eq. 11), its PMNF model (Eq. 12), the
// parallel efficiency ε (Eq. 13), and the cost curve (Eq. 14).
type ScalabilityResult struct {
	Benchmark    string
	ScalingMode  string
	RuntimeModel *modeling.Model
	SpeedupModel *modeling.Model
	Points       []ScalabilityPoint
}

// Scalability runs the analysis for a benchmark on DEEP. Weak scaling
// reproduces the case study's negative "speedup" (growing runtime); strong
// scaling shows the classic diminishing-returns curve.
func Scalability(seed int64, benchName string, weak bool) (*ScalabilityResult, error) {
	b, err := engine.ByName(benchName)
	if err != nil {
		return nil, err
	}
	sys := hardware.DEEP()
	res, err := runCell(b, sys, parallel.DataParallel{FusionBuckets: 4}, weak, seed)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("experiments: no feasible scalability campaign for %s", benchName)
	}
	model := res.Models.App[epoch.AppPath]

	xs := make([]float64, 0, len(deepModelingRanks)+len(deepEvalRanks))
	for _, r := range append(append([]int(nil), deepModelingRanks...), deepEvalRanks...) {
		xs = append(xs, float64(r))
	}
	speedups, err := analysis.Speedups(model.Function, xs)
	if err != nil {
		return nil, err
	}
	effs, err := analysis.Efficiencies(model.Function, xs)
	if err != nil {
		return nil, err
	}
	opts := modeling.DefaultOptions()
	if !weak {
		opts = modeling.StrongScalingOptions()
	}
	speedupModel, err := analysis.SpeedupModel(model.Function, xs, opts)
	if err != nil {
		return nil, err
	}
	cm := analysis.CostModel{Runtime: model.Function, CoresPerRank: float64(sys.CoresPerRank)}

	out := &ScalabilityResult{
		Benchmark:    benchName,
		ScalingMode:  map[bool]string{true: "weak", false: "strong"}[weak],
		RuntimeModel: model,
		SpeedupModel: speedupModel,
	}
	for i, x := range xs {
		out.Points = append(out.Points, ScalabilityPoint{
			Ranks:      x,
			Time:       model.Predict(x),
			SpeedupPct: speedups[i],
			Efficiency: effs[i],
			Cost:       cm.CoreHours(x),
		})
	}
	return out, nil
}

// Render formats the scalability report.
func (r *ScalabilityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Scalability analysis (Sections 3.1-3.2): %s, %s scaling, DEEP ===\n", r.Benchmark, r.ScalingMode)
	fmt.Fprintf(&b, "runtime model: T(p) = %s\n", r.RuntimeModel.Function)
	fmt.Fprintf(&b, "speedup model: D(p) = %s\n\n", r.SpeedupModel.Function)
	t := &Table{Header: []string{"ranks", "T(p) [s]", "speedup", "efficiency", "cost [core-h]"}}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.0f", p.Ranks), secs(p.Time), pct(p.SpeedupPct),
			fmt.Sprintf("%.3f", p.Efficiency), fmt.Sprintf("%.3f", p.Cost))
	}
	b.WriteString(t.String())
	return b.String()
}

// Chart renders the runtime and cost curves.
func (r *ScalabilityResult) Chart() *plot.LineChart {
	var xs, times, costs []float64
	for _, p := range r.Points {
		xs = append(xs, p.Ranks)
		times = append(times, p.Time)
		costs = append(costs, p.Cost)
	}
	return &plot.LineChart{
		Title:  fmt.Sprintf("Scalability: %s (%s scaling)", r.Benchmark, r.ScalingMode),
		XLabel: "MPI ranks",
		YLabel: "seconds / core-hours",
		LogX:   true,
		Series: []plot.Series{
			{Name: "training time per epoch [s]", X: xs, Y: times, Markers: true},
			{Name: "cost per epoch [core-h]", X: xs, Y: costs, Markers: true},
		},
	}
}
