package experiments

import (
	"strings"
	"testing"
)

func TestFigure3Chart(t *testing.T) {
	f, err := Figure3(7)
	if err != nil {
		t.Fatal(err)
	}
	svg, err := f.Chart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 3", "model (95% CI)", "measured", "polygon"} {
		if !strings.Contains(svg, want) {
			t.Errorf("chart missing %q", want)
		}
	}
}

func TestFigure5Chart(t *testing.T) {
	f, err := Figure5(7, "imdb")
	if err != nil {
		t.Fatal(err)
	}
	svg, err := f.Chart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"data", "tensor", "pipeline", "nodes"} {
		if !strings.Contains(svg, want) {
			t.Errorf("chart missing %q", want)
		}
	}
}

func TestFigure6Chart(t *testing.T) {
	f, err := Figure6(7, "imdb")
	if err != nil {
		t.Fatal(err)
	}
	svg, err := f.Chart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "DEEP") || !strings.Contains(svg, "JURECA") {
		t.Error("chart missing system series")
	}
}

func TestFigure7Chart(t *testing.T) {
	f, err := Figure7(7, "cifar10", "imdb")
	if err != nil {
		t.Fatal(err)
	}
	svg, err := f.Chart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "cifar10") || !strings.Contains(svg, "imdb") {
		t.Error("chart missing benchmark series")
	}
}

func TestFigure8Chart(t *testing.T) {
	f, err := Figure8("cifar10", "imdb")
	if err != nil {
		t.Fatal(err)
	}
	svg, err := f.Chart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"std exec", "sampled exec", "cifar10", "imdb"} {
		if !strings.Contains(svg, want) {
			t.Errorf("chart missing %q", want)
		}
	}
}

func TestFigure4bCharts(t *testing.T) {
	f, err := Figure4b(7)
	if err != nil {
		t.Fatal(err)
	}
	timeChart, costChart := f.Charts()
	svgT, err := timeChart.SVG()
	if err != nil {
		t.Fatal(err)
	}
	svgC, err := costChart.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svgT, "target time") {
		t.Error("time chart missing constraint line")
	}
	if !strings.Contains(svgC, "budget") {
		t.Error("cost chart missing constraint line")
	}
}
