package experiments

import (
	"strings"
	"testing"
)

func TestBaselinesComparison(t *testing.T) {
	r, err := Baselines(7, "cifar10")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no comparison rows")
	}
	// Sampling must slash profiling cost by an order of magnitude
	// (Fig. 8's point: ≈95% less).
	if r.ProfiledSecondsFull < 5*r.ProfiledSecondsSampled {
		t.Errorf("full profiling cost %v should dwarf sampled cost %v",
			r.ProfiledSecondsFull, r.ProfiledSecondsSampled)
	}
	// Empirical approaches must beat the analytical model by a wide
	// margin.
	if r.AnalyticalMPE < 3*r.ExtraDeepMPE {
		t.Errorf("analytical MPE %v should far exceed Extra-Deep's %v",
			r.AnalyticalMPE, r.ExtraDeepMPE)
	}
	if r.AnalyticalMPE < 3*r.FullProfilingMPE {
		t.Errorf("analytical MPE %v should far exceed full-profiling's %v",
			r.AnalyticalMPE, r.FullProfilingMPE)
	}
	// The analytical model is optimistic (underestimates), not just
	// wrong: every prediction below the measurement.
	for _, row := range r.Rows {
		if row.Analytical >= row.Actual {
			t.Errorf("analytical prediction at %d ranks (%v) not below measured (%v)",
				row.Ranks, row.Analytical, row.Actual)
		}
	}
	// Both empirical models stay in a sane band.
	if r.ExtraDeepMPE > 15 || r.FullProfilingMPE > 20 {
		t.Errorf("empirical MPEs too high: %v / %v", r.ExtraDeepMPE, r.FullProfilingMPE)
	}
	if !strings.Contains(r.Render(), "Baseline comparison") {
		t.Error("render broken")
	}
}

func TestBaselinesUnknownBenchmark(t *testing.T) {
	if _, err := Baselines(7, "nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
