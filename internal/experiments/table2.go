package experiments

import (
	"fmt"
	"sort"
	"strings"

	"extradeep/internal/calltree"
	"extradeep/internal/epoch"
	"extradeep/internal/mathutil"
	"extradeep/internal/measurement"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

// table2Nodes are the evaluation node counts reported in Table 2.
var table2Nodes = []int{24, 32, 40, 48, 56, 64}

// Table2RowKey identifies one row of Table 2.
type Table2RowKey struct {
	// Group is the model-type label, e.g. "CUDA kernels" or "MPI".
	Group string
	// Metric is the modeled metric.
	Metric measurement.Metric
}

// Table2Row carries one row's numbers.
type Table2Row struct {
	Key Table2RowKey
	// MPE maps node count → median percentage error across all kernel
	// models of the group.
	MPE map[int]float64
	// Models is the number of kernel models in the group.
	Models int
}

// Table2Result reproduces Table 2: per-model-type prediction accuracy at
// the evaluation scales, for all benchmarks on both systems under data
// parallelism.
type Table2Result struct {
	Rows []Table2Row
}

// table2Group maps a kernel kind to its Table 2 row label ("" = not
// reported, e.g. CUDA API bookkeeping).
func table2Group(k calltree.Kind) string {
	switch k {
	case calltree.KindCUDA:
		return "CUDA kernels"
	case calltree.KindNVTX:
		return "NVTX func."
	case calltree.KindOS:
		return "OS func."
	case calltree.KindCuBLAS:
		return "cuBLAS"
	case calltree.KindCuDNN:
		return "cuDNN"
	case calltree.KindMPI, calltree.KindNCCL:
		return "MPI"
	case calltree.KindMemcpy, calltree.KindMemset:
		return "Memory ops."
	default:
		return ""
	}
}

// table2Metrics lists the metrics reported per group.
func table2Metrics(group string) []measurement.Metric {
	switch group {
	case "CUDA kernels", "NVTX func.":
		return []measurement.Metric{measurement.MetricTime, measurement.MetricVisits}
	case "Memory ops.":
		return []measurement.Metric{measurement.MetricTime, measurement.MetricBytes}
	default:
		return []measurement.Metric{measurement.MetricTime}
	}
}

// Table2 runs the kernel-level accuracy study.
func Table2(seed int64, benchNames ...string) (*Table2Result, error) {
	type cellErrors struct {
		errs   map[int][]float64
		models int
	}
	cells := make(map[Table2RowKey]*cellErrors)
	record := func(key Table2RowKey, nodes int, err float64) {
		c := cells[key]
		if c == nil {
			c = &cellErrors{errs: make(map[int][]float64)}
			cells[key] = c
		}
		c.errs[nodes] = append(c.errs[nodes], err)
	}

	for _, sys := range []hardware.System{hardware.DEEP(), hardware.JURECA()} {
		for _, benchName := range benchNamesOrAll(benchNames) {
			b, err := engine.ByName(benchName)
			if err != nil {
				return nil, err
			}
			strat := parallel.DataParallel{FusionBuckets: 4}
			res, err := runCell(b, sys, strat, true, seed)
			if err != nil {
				return nil, fmt.Errorf("table2 %s/%s: %w", sys.Name, benchName, err)
			}
			if res == nil {
				continue
			}
			setup := engine.SetupFunc(b, strat, true)

			// Kernel kinds by callpath, from any aggregate.
			kinds := make(map[string]calltree.Kind)
			for _, agg := range res.Aggregates {
				for path, k := range agg.Kernels {
					kinds[path] = k.Kind
				}
			}
			// Aggregates by rank count for actual values.
			aggByRank := make(map[int]int)
			for i, agg := range res.Aggregates {
				aggByRank[int(agg.Point[0])] = i
			}

			_, evalRanks := modelingRanksFor(sys)
			metrics := make([]measurement.Metric, 0, len(res.Models.Kernel))
			for metric := range res.Models.Kernel {
				metrics = append(metrics, metric)
			}
			sort.Slice(metrics, func(i, j int) bool { return metrics[i] < metrics[j] })
			for _, metric := range metrics {
				byPath := res.Models.Kernel[metric]
				for _, path := range sortedCallpaths(byPath) {
					model := byPath[path]
					group := table2Group(kinds[path])
					if group == "" {
						continue
					}
					key := Table2RowKey{Group: group, Metric: metric}
					c := cells[key]
					if c == nil {
						c = &cellErrors{errs: make(map[int][]float64)}
						cells[key] = c
					}
					c.models++
					for _, ranks := range evalRanks {
						idx, ok := aggByRank[ranks]
						if !ok {
							continue
						}
						agg := res.Aggregates[idx]
						k, ok := agg.Kernels[path]
						if !ok {
							continue
						}
						sv, ok := k.Value[metric]
						if !ok {
							continue
						}
						actual := epoch.KernelValue(sv, setup(agg.Point))
						if actual == 0 {
							continue
						}
						pred := model.Predict(float64(ranks))
						record(key, nodesOf(sys, ranks), mathutil.AbsPercentError(pred, actual))
					}
				}
			}
		}
	}

	out := &Table2Result{}
	for _, group := range []string{"CUDA kernels", "NVTX func.", "OS func.", "cuBLAS", "cuDNN", "MPI", "Memory ops."} {
		for _, metric := range table2Metrics(group) {
			key := Table2RowKey{Group: group, Metric: metric}
			c := cells[key]
			if c == nil {
				continue
			}
			row := Table2Row{Key: key, MPE: make(map[int]float64), Models: c.models}
			for _, n := range table2Nodes {
				if errs, ok := c.errs[n]; ok {
					row.MPE[n] = medianOf(errs)
				}
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Render formats Table 2.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("=== Table 2: MPE by model type at the evaluation points (data parallelism, both systems) ===\n\n")
	header := []string{"model type", "metric"}
	for _, n := range table2Nodes {
		header = append(header, fmt.Sprintf("%d", n))
	}
	header = append(header, "models")
	t := &Table{Header: header}
	for _, row := range r.Rows {
		cells := []string{row.Key.Group, string(row.Key.Metric)}
		for _, n := range table2Nodes {
			if v, ok := row.MPE[n]; ok {
				cells = append(cells, pct(v))
			} else {
				cells = append(cells, "-")
			}
		}
		cells = append(cells, fmt.Sprintf("%d", row.Models))
		t.AddRow(cells...)
	}
	b.WriteString(t.String())
	return b.String()
}
