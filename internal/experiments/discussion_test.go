package experiments

import (
	"testing"

	"extradeep/internal/analysis"
	"extradeep/internal/core"
	"extradeep/internal/epoch"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/network"
	"extradeep/internal/simulator/parallel"
)

// TestDiscussionExtrapolationRange exercises the discussion of the paper's
// Section 4.3: predictions far beyond the measured range are risky, the
// extrapolation-ratio heuristic flags them, and a measurement set
// recommended for the target (the paper's {8,…,128} example) keeps the far
// prediction within the "possible" band.
//
// Note (recorded in EXPERIMENTS.md): on this substrate the communication
// share at extreme scale is small enough that run-to-run noise, not the
// scale-dependent fabric knee, dominates the far-prediction error — so the
// paper's strict "closer range strictly beats tiny range" ordering is not
// reproducible point-wise; the assertions below capture the parts that
// are.
func TestDiscussionExtrapolationRange(t *testing.T) {
	b, err := engine.ByName("cifar10")
	if err != nil {
		t.Fatal(err)
	}
	sys := hardware.JURECA() // enough GPUs for a 512-rank evaluation point
	const target = 512

	run := func(modelingRanks []int) float64 {
		t.Helper()
		var errs []float64
		for _, seed := range []int64{3, 7, 11} {
			camp := core.Campaign{
				Benchmark: b,
				Config: engine.RunConfig{
					System:      sys,
					Strategy:    parallel.DataParallel{FusionBuckets: 4},
					WeakScaling: true,
					Seed:        seed,
					SampleRanks: 4,
				},
				ModelingRanks: modelingRanks,
				EvalRanks:     []int{target},
				Reps:          5,
			}
			res, err := core.RunCampaign(camp)
			if err != nil {
				t.Fatal(err)
			}
			e, ok := res.PercentError(epoch.AppPath, target)
			if !ok {
				t.Fatal("no prediction error at the target")
			}
			errs = append(errs, e)
		}
		return medianOf(errs)
	}

	tiny := run([]int{2, 4, 6, 8, 10})
	// The paper's example set for a far target: {8, 16, 32, 64, 128}.
	recommendedPts, err := analysis.RecommendPoints(target, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	recommended := make([]int, len(recommendedPts))
	for i, p := range recommendedPts {
		recommended[i] = int(p)
	}
	good := run(recommended)
	t.Logf("median prediction error at %d ranks: tiny range %.1f%%, recommended range %v %.1f%%",
		target, tiny, recommended, good)

	// The recommended range keeps the far prediction "possible"
	// (well within the paper's 15–20% desirable band for far points).
	if good > 25 {
		t.Errorf("recommended-range error = %.1f%%, far prediction should remain possible", good)
	}

	// The extrapolation-ratio heuristic separates the two setups.
	if r := analysis.ExtrapolationRatio([]float64{2, 4, 6, 8, 10}, target); r < 50 {
		t.Errorf("tiny-range ratio = %v, expected ≫8", r)
	}
	if r := analysis.ExtrapolationRatio(recommendedPts, target); r > 8.01 {
		t.Errorf("recommended ratio = %v, want ≤8", r)
	}
}

// TestFabricKneeIsScaleDependentBehaviour verifies the substrate exhibits
// the behaviour change §4.3 warns about: beyond the saturation knee the
// JURECA fabric's allreduce cost grows much faster than a below-knee
// extrapolation would suggest.
func TestFabricKneeIsScaleDependentBehaviour(t *testing.T) {
	bytes := 25e6
	time := func(ranks int) float64 {
		return network.FromSystem(hardware.JURECA(), ranks).Time(network.Allreduce, bytes)
	}
	// Growth factor per node-doubling below the knee (2→4 nodes, i.e.
	// 8→16 ranks) versus far above it (64→128 nodes).
	below := time(16) / time(8)
	above := time(512) / time(256)
	if above <= below {
		t.Errorf("knee missing: growth per doubling %v below vs %v above", below, above)
	}
	// DEEP (single GPU per node) has no knee.
	dtime := func(ranks int) float64 {
		return network.FromSystem(hardware.DEEP(), ranks).Time(network.Allreduce, bytes)
	}
	dBelow := dtime(8) / dtime(4)
	dAbove := dtime(64) / dtime(32)
	if dAbove > dBelow*1.3 {
		t.Errorf("DEEP should stay knee-free: %v vs %v", dBelow, dAbove)
	}
}
