package experiments

import (
	"fmt"
	"strings"

	"extradeep/internal/analysis"
	"extradeep/internal/core"
	"extradeep/internal/epoch"
	"extradeep/internal/measurement"
	"extradeep/internal/modeling"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

// Case-study measurement sets (Section 2.3): five modeling points and
// twelve evaluation points.
var (
	caseStudyModelingRanks = []int{2, 4, 6, 10, 12}
	caseStudyEvalRanks     = []int{14, 16, 18, 20, 24, 28, 32, 36, 40, 48, 56, 64}
)

// CaseStudyResult reproduces the running example of Sections 2–3: the
// ResNet-50/CIFAR-10 weak-scaling study on DEEP answering Q1–Q5.
type CaseStudyResult struct {
	// EpochModel is T_epoch(x1), the training-time-per-epoch model
	// (paper: 158.58 + 0.58·x1^{2/3}·log2(x1)²).
	EpochModel *modeling.Model
	// CommModel is T_comm(x1) (paper: grows 34.41 s → 296.57 s over
	// 2 → 64 ranks).
	CommModel *modeling.Model
	// Q1Prediction is the predicted training time per epoch at 40 ranks
	// (paper: 352.37 s).
	Q1Prediction float64
	// CommAt2 and CommAt64 are the communication times per epoch at the
	// ends of the evaluated range.
	CommAt2, CommAt64 float64
	// CostModel is C_epoch(x1) in core-hours (paper: 0.082·x1^{1.62}).
	CostModel *modeling.Model
	// Q4CostAt32 is the predicted cost at 32 ranks (paper: 22.49 core-h).
	Q4CostAt32 float64
	// Q5BestRanks is the most cost-effective configuration under weak
	// scaling (paper: the smallest allocation, 2 ranks).
	Q5BestRanks float64
	// Bottleneck is the callpath ranked as the top scaling bottleneck
	// (paper: the MPI communication).
	Bottleneck string
	// Errors maps rank count → percentage error of the epoch model
	// against the measured value (modeling + evaluation points).
	Errors map[int]float64
	// Actuals maps rank count → measured median training time per epoch.
	Actuals map[int]float64
	// Campaign is the underlying campaign result for further analysis.
	Campaign *core.CampaignResult
}

// CaseStudy runs the complete CIFAR-10 case study.
func CaseStudy(seed int64) (*CaseStudyResult, error) {
	b, err := engine.ByName("cifar10")
	if err != nil {
		return nil, err
	}
	sys := hardware.DEEP()
	strat := parallel.DataParallel{FusionBuckets: 4}
	camp := core.Campaign{
		Benchmark: b,
		Config: engine.RunConfig{
			System:      sys,
			Strategy:    strat,
			WeakScaling: true,
			Seed:        seed,
			SampleRanks: 4,
			Granularity: engine.GranularityLayer,
		},
		ModelingRanks: caseStudyModelingRanks,
		EvalRanks:     caseStudyEvalRanks,
		Reps:          5,
	}
	res, err := core.RunCampaign(camp)
	if err != nil {
		return nil, err
	}

	out := &CaseStudyResult{
		EpochModel: res.Models.App[epoch.AppPath],
		CommModel:  res.Models.App[epoch.CommPath],
		Errors:     make(map[int]float64),
		Actuals:    make(map[int]float64),
		Campaign:   res,
	}
	if out.EpochModel == nil || out.CommModel == nil {
		return nil, fmt.Errorf("experiments: case study produced no application models")
	}

	// Q1: training time per epoch at 40 ranks.
	out.Q1Prediction = out.EpochModel.Predict(40)

	// Q2: accuracy/predictive power per point.
	for _, ranks := range append(append([]int(nil), caseStudyModelingRanks...), caseStudyEvalRanks...) {
		if e, ok := res.PercentError(epoch.AppPath, ranks); ok {
			out.Errors[ranks] = e
		}
		if a, ok := res.ActualMedian(epoch.AppPath, ranks); ok {
			out.Actuals[ranks] = a
		}
	}

	// Q3: bottleneck ranking over the kernel runtime models.
	timeModels := res.Models.Kernel[measurement.MetricTime]
	ranked := analysis.RankByGrowth(timeModels, measurement.Point{2}, measurement.Point{64})
	if len(ranked) > 0 {
		out.Bottleneck = ranked[0].Callpath
	}
	out.CommAt2 = out.CommModel.Predict(2)
	out.CommAt64 = out.CommModel.Predict(64)

	// Q4: cost model (ϱ = 8 cores per rank on DEEP).
	cm := analysis.CostModel{Runtime: out.EpochModel.Function, CoresPerRank: float64(sys.CoresPerRank)}
	xs := make([]float64, 0, len(caseStudyModelingRanks)+len(caseStudyEvalRanks))
	for _, r := range caseStudyModelingRanks {
		xs = append(xs, float64(r))
	}
	for _, r := range caseStudyEvalRanks {
		xs = append(xs, float64(r))
	}
	costModel, err := cm.FitCostModel(xs, modeling.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("experiments: cost model: %w", err)
	}
	out.CostModel = costModel
	out.Q4CostAt32 = cm.CoreHours(32)

	// Q5: most cost-effective configuration (weak scaling: smallest).
	best, err := analysis.MostCostEffective(out.EpochModel.Function, cm, xs, analysis.Constraint{})
	if err != nil {
		return nil, fmt.Errorf("experiments: Q5: %w", err)
	}
	out.Q5BestRanks = best.Ranks

	return out, nil
}

// Render formats the case-study report.
func (r *CaseStudyResult) Render() string {
	var b strings.Builder
	b.WriteString("=== Case study: ResNet-50 / CIFAR-10, weak scaling, DEEP (Sections 2-3) ===\n\n")
	fmt.Fprintf(&b, "T_epoch(x1) = %s   [paper: 158.58 + 0.58*x1^(2/3)*log2(x1)^2]\n", r.EpochModel.Function)
	fmt.Fprintf(&b, "Q1: predicted training time per epoch @ 40 ranks: %.2f s   [paper: 352.37 s]\n\n", r.Q1Prediction)

	t := &Table{Header: []string{"ranks", "measured [s]", "predicted [s]", "error", "set"}}
	mod := make(map[int]bool)
	for _, x := range caseStudyModelingRanks {
		mod[x] = true
	}
	for _, ranks := range sortedIntKeys(r.Errors) {
		set := "eval"
		if mod[ranks] {
			set = "model"
		}
		t.AddRow(fmt.Sprintf("%d", ranks), secs(r.Actuals[ranks]),
			secs(r.EpochModel.Predict(float64(ranks))), pct(r.Errors[ranks]), set)
	}
	b.WriteString(t.String())

	fmt.Fprintf(&b, "\nQ3: top scaling bottleneck: %s\n", r.Bottleneck)
	fmt.Fprintf(&b, "    T_comm(x1) = %s\n", r.CommModel.Function)
	fmt.Fprintf(&b, "    communication per epoch: %.2f s @ 2 ranks -> %.2f s @ 64 ranks   [paper: 34.41 -> 296.57]\n", r.CommAt2, r.CommAt64)
	fmt.Fprintf(&b, "Q4: C_epoch(x1) = %s core-hours; C(32) = %.2f   [paper: 0.082*x1^1.62; 22.49]\n", r.CostModel.Function, r.Q4CostAt32)
	fmt.Fprintf(&b, "Q5: most cost-effective configuration: %.0f ranks   [paper: 2 ranks]\n", r.Q5BestRanks)
	return b.String()
}
