package experiments

import (
	"fmt"
	"strings"

	"extradeep/internal/analysis"
	"extradeep/internal/epoch"
	"extradeep/internal/modeling"
	"extradeep/internal/simulator/dataset"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

// benchNamesOrAll defaults to the five paper benchmarks.
func benchNamesOrAll(names []string) []string {
	if len(names) == 0 {
		return dataset.Names()
	}
	return names
}

// ---------------------------------------------------------------------
// Figure 3 — case-study model vs. measurement with confidence interval.
// ---------------------------------------------------------------------

// Figure3Point is one bar of Fig. 3.
type Figure3Point struct {
	Ranks      int
	Measured   float64
	Predicted  float64
	ErrorPct   float64
	CILo, CIHi float64
	WithinCI   bool
	Modeling   bool
}

// Figure3Result reproduces Fig. 3: the training-time-per-epoch model of
// the case study against measured runs, with the 95% confidence interval.
type Figure3Result struct {
	Model  *modeling.Model
	Points []Figure3Point
}

// Figure3 runs the case-study campaign and derives the figure's series.
func Figure3(seed int64) (*Figure3Result, error) {
	cs, err := CaseStudy(seed)
	if err != nil {
		return nil, err
	}
	out := &Figure3Result{Model: cs.EpochModel}
	mod := make(map[int]bool)
	for _, x := range caseStudyModelingRanks {
		mod[x] = true
	}
	for _, ranks := range sortedIntKeys(cs.Actuals) {
		lo, hi := cs.EpochModel.PredictInterval(0.95, float64(ranks))
		meas := cs.Actuals[ranks]
		out.Points = append(out.Points, Figure3Point{
			Ranks:     ranks,
			Measured:  meas,
			Predicted: cs.EpochModel.Predict(float64(ranks)),
			ErrorPct:  cs.Errors[ranks],
			CILo:      lo,
			CIHi:      hi,
			WithinCI:  meas >= lo && meas <= hi,
			Modeling:  mod[ranks],
		})
	}
	return out, nil
}

// Render formats the Fig. 3 table.
func (r *Figure3Result) Render() string {
	var b strings.Builder
	b.WriteString("=== Figure 3: training time per epoch, model vs. measured (95% CI) ===\n")
	fmt.Fprintf(&b, "model: %s\n\n", r.Model.Function)
	t := &Table{Header: []string{"ranks", "measured [s]", "predicted [s]", "error", "95% CI", "within", "set"}}
	for _, p := range r.Points {
		set := "eval"
		if p.Modeling {
			set = "model"
		}
		t.AddRow(fmt.Sprintf("%d", p.Ranks), secs(p.Measured), secs(p.Predicted), pct(p.ErrorPct),
			fmt.Sprintf("[%.1f, %.1f]", p.CILo, p.CIHi), fmt.Sprintf("%v", p.WithinCI), set)
	}
	b.WriteString(t.String())
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 5 — model accuracy & predictive power per parallel strategy.
// ---------------------------------------------------------------------

// Figure5Result reproduces Fig. 5: the median percentage error of the
// training-time-per-epoch models for data, tensor and pipeline parallelism
// on JURECA, combining weak- and strong-scaling experiments.
type Figure5Result struct {
	// MPE maps strategy → node count → median percentage error across
	// benchmarks and scaling modes.
	MPE map[string]map[int]float64
	// ModelingNodes and EvalNodes are the node counts of the two figure
	// regions.
	ModelingNodes, EvalNodes []int
}

// Figure5 runs the parallel-strategy comparison. Passing benchmark names
// restricts the sweep (nil = all five).
func Figure5(seed int64, benchNames ...string) (*Figure5Result, error) {
	sys := hardware.JURECA()
	out := &Figure5Result{MPE: make(map[string]map[int]float64)}
	for _, stratName := range parallel.Names() {
		strat, err := parallel.ByName(stratName)
		if err != nil {
			return nil, err
		}
		errsByNode := make(map[int][]float64)
		for _, benchName := range benchNamesOrAll(benchNames) {
			b, err := engine.ByName(benchName)
			if err != nil {
				return nil, err
			}
			for _, weak := range []bool{true, false} {
				res, err := runCell(b, sys, strat, weak, seed)
				if err != nil {
					return nil, fmt.Errorf("figure5 %s/%s weak=%v: %w", stratName, benchName, weak, err)
				}
				if res == nil {
					continue
				}
				for _, ranks := range sortedRankCounts(res.AppActuals[epoch.AppPath]) {
					if e, ok := res.PercentError(epoch.AppPath, ranks); ok {
						nodes := nodesOf(sys, ranks)
						errsByNode[nodes] = append(errsByNode[nodes], e)
					}
				}
			}
		}
		mpe := make(map[int]float64, len(errsByNode))
		for nodes, errs := range errsByNode {
			mpe[nodes] = medianOf(errs)
		}
		out.MPE[stratName] = mpe
	}
	for _, r := range jurecaModelingRanks {
		out.ModelingNodes = append(out.ModelingNodes, nodesOf(sys, r))
	}
	for _, r := range jurecaEvalRanks {
		out.EvalNodes = append(out.EvalNodes, nodesOf(sys, r))
	}
	return out, nil
}

// Render formats the Fig. 5 table.
func (r *Figure5Result) Render() string {
	var b strings.Builder
	b.WriteString("=== Figure 5: MPE of T_epoch models per parallel strategy (JURECA) ===\n\n")
	t := &Table{Header: []string{"nodes", "data", "tensor", "pipeline", "region"}}
	nodes := sortedIntKeys(r.MPE["data"])
	modSet := make(map[int]bool)
	for _, n := range r.ModelingNodes {
		modSet[n] = true
	}
	for _, n := range nodes {
		region := "predictive power"
		if modSet[n] {
			region = "model accuracy"
		}
		row := []string{fmt.Sprintf("%d", n)}
		for _, s := range parallel.Names() {
			if v, ok := r.MPE[s][n]; ok {
				row = append(row, pct(v))
			} else {
				row = append(row, "-")
			}
		}
		row = append(row, region)
		t.AddRow(row...)
	}
	b.WriteString(t.String())
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 6 — DEEP vs. JURECA under data parallelism.
// ---------------------------------------------------------------------

// Figure6Result reproduces Fig. 6: the MPE of the training-time models on
// the two systems (1 GPU/node without NCCL vs. 4 GPUs/node with NCCL).
type Figure6Result struct {
	// MPE maps system name → node count → MPE across benchmarks and
	// scaling modes.
	MPE map[string]map[int]float64
}

// Figure6 runs the system comparison.
func Figure6(seed int64, benchNames ...string) (*Figure6Result, error) {
	out := &Figure6Result{MPE: make(map[string]map[int]float64)}
	for _, sys := range []hardware.System{hardware.DEEP(), hardware.JURECA()} {
		errsByNode := make(map[int][]float64)
		for _, benchName := range benchNamesOrAll(benchNames) {
			b, err := engine.ByName(benchName)
			if err != nil {
				return nil, err
			}
			for _, weak := range []bool{true, false} {
				res, err := runCell(b, sys, parallel.DataParallel{FusionBuckets: 4}, weak, seed)
				if err != nil {
					return nil, fmt.Errorf("figure6 %s/%s: %w", sys.Name, benchName, err)
				}
				if res == nil {
					continue
				}
				for _, ranks := range sortedRankCounts(res.AppActuals[epoch.AppPath]) {
					if e, ok := res.PercentError(epoch.AppPath, ranks); ok {
						errsByNode[nodesOf(sys, ranks)] = append(errsByNode[nodesOf(sys, ranks)], e)
					}
				}
			}
		}
		mpe := make(map[int]float64, len(errsByNode))
		for nodes, errs := range errsByNode {
			mpe[nodes] = medianOf(errs)
		}
		out.MPE[sys.Name] = mpe
	}
	return out, nil
}

// Render formats the Fig. 6 table.
func (r *Figure6Result) Render() string {
	var b strings.Builder
	b.WriteString("=== Figure 6: MPE of T_epoch models, DEEP (no NCCL) vs JURECA (NCCL) ===\n\n")
	t := &Table{Header: []string{"nodes", "DEEP", "JURECA"}}
	for _, n := range sortedIntKeys(r.MPE["DEEP"]) {
		row := []string{fmt.Sprintf("%d", n)}
		for _, sysName := range []string{"DEEP", "JURECA"} {
			if v, ok := r.MPE[sysName][n]; ok {
				row = append(row, pct(v))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	b.WriteString(t.String())
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 7 — predictive power per benchmark on DEEP.
// ---------------------------------------------------------------------

// Figure7Result reproduces Fig. 7: the per-benchmark percentage error of
// the runtime-per-epoch models at the evaluation points on DEEP.
type Figure7Result struct {
	// Error maps benchmark → node count → percentage error (median over
	// weak/strong scaling).
	Error map[string]map[int]float64
	// EvalNodes is the x-axis.
	EvalNodes []int
}

// Figure7 runs the benchmark comparison.
func Figure7(seed int64, benchNames ...string) (*Figure7Result, error) {
	sys := hardware.DEEP()
	out := &Figure7Result{Error: make(map[string]map[int]float64), EvalNodes: deepEvalRanks}
	for _, benchName := range benchNamesOrAll(benchNames) {
		b, err := engine.ByName(benchName)
		if err != nil {
			return nil, err
		}
		errsByNode := make(map[int][]float64)
		for _, weak := range []bool{true, false} {
			res, err := runCell(b, sys, parallel.DataParallel{FusionBuckets: 4}, weak, seed)
			if err != nil {
				return nil, fmt.Errorf("figure7 %s: %w", benchName, err)
			}
			if res == nil {
				continue
			}
			for _, ranks := range deepEvalRanks {
				if e, ok := res.PercentError(epoch.AppPath, ranks); ok {
					errsByNode[ranks] = append(errsByNode[ranks], e)
				}
			}
		}
		byNode := make(map[int]float64)
		for nodes, errs := range errsByNode {
			byNode[nodes] = medianOf(errs)
		}
		out.Error[benchName] = byNode
	}
	return out, nil
}

// Render formats the Fig. 7 table.
func (r *Figure7Result) Render() string {
	var b strings.Builder
	b.WriteString("=== Figure 7: predictive power per benchmark, data parallelism, DEEP ===\n\n")
	names := make([]string, 0, len(r.Error))
	for _, n := range dataset.Names() {
		if _, ok := r.Error[n]; ok {
			names = append(names, n)
		}
	}
	t := &Table{Header: append([]string{"nodes"}, names...)}
	for _, n := range r.EvalNodes {
		row := []string{fmt.Sprintf("%d", n)}
		for _, bench := range names {
			if v, ok := r.Error[bench][n]; ok {
				row = append(row, pct(v))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	b.WriteString(t.String())
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 8 — profiling overhead with and without efficient sampling.
// ---------------------------------------------------------------------

// Figure8Row is one benchmark of Fig. 8.
type Figure8Row struct {
	Benchmark string
	// StandardExec and StandardProfiling are the per-epoch executed time
	// and profiling overhead when profiling full epochs.
	StandardExec, StandardProfiling float64
	// SampledExec and SampledProfiling are the per-epoch numbers under
	// the efficient sampling strategy.
	SampledExec, SampledProfiling float64
	// Savings is the relative reduction of profiled execution time.
	Savings float64
}

// Figure8Result reproduces Fig. 8 (64 nodes, data parallelism, DEEP).
type Figure8Result struct {
	Rows []Figure8Row
	// AvgSavings is the average reduction (paper: ≈94.9%).
	AvgSavings float64
}

// Figure8 computes the profiling-overhead comparison.
func Figure8(benchNames ...string) (*Figure8Result, error) {
	out := &Figure8Result{}
	var sum float64
	for _, benchName := range benchNamesOrAll(benchNames) {
		b, err := engine.ByName(benchName)
		if err != nil {
			return nil, err
		}
		cfg := engine.RunConfig{
			System:      hardware.DEEP(),
			Strategy:    parallel.DataParallel{FusionBuckets: 4},
			Ranks:       64,
			WeakScaling: true,
		}
		st, err := engine.Stats(b, cfg)
		if err != nil {
			return nil, fmt.Errorf("figure8 %s: %w", benchName, err)
		}
		row := Figure8Row{
			Benchmark:         benchName,
			StandardExec:      st.ExecTimePerEpoch,
			StandardProfiling: st.ProfilingTimeFull,
			SampledExec:       st.SampledExecPerEpoch,
			SampledProfiling:  st.ProfilingTimeSampled,
			Savings:           st.SavingsFraction(),
		}
		out.Rows = append(out.Rows, row)
		sum += row.Savings
	}
	if len(out.Rows) > 0 {
		out.AvgSavings = sum / float64(len(out.Rows))
	}
	return out, nil
}

// Render formats the Fig. 8 table.
func (r *Figure8Result) Render() string {
	var b strings.Builder
	b.WriteString("=== Figure 8: profiling overhead, standard vs efficient sampling (64 nodes, DEEP) ===\n\n")
	t := &Table{Header: []string{"benchmark", "std exec [s]", "std prof [s]", "sampled exec [s]", "sampled prof [s]", "savings"}}
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, secs(row.StandardExec), secs(row.StandardProfiling),
			secs(row.SampledExec), secs(row.SampledProfiling), pct(row.Savings*100))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\naverage profiling-time reduction: %s   [paper: 94.9%%]\n", pct(r.AvgSavings*100))
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 4b — cost-effective training configurations (strong scaling).
// ---------------------------------------------------------------------

// Figure4bResult reproduces the Fig. 4b example: a strong-scaling
// runtime/cost trade-off with a target time and budget, and the most
// cost-effective feasible configuration.
type Figure4bResult struct {
	// Candidates are the assessed configurations.
	Candidates []analysis.Feasibility
	// MaxTime and Budget are the applied constraints.
	MaxTime, Budget float64
	// Best is the selected configuration.
	Best analysis.Feasibility
	// RuntimeModel is the underlying strong-scaling epoch model.
	RuntimeModel *modeling.Model
}

// Figure4b runs a strong-scaling ImageNet campaign on DEEP and the
// cost-effectiveness analysis of Section 3.3. The target time and budget
// are placed mid-range (like the paper's 40 s / 2.8 core-hours) so the
// technically and economically feasible regions genuinely overlap on a
// strict subset of the candidates.
func Figure4b(seed int64) (*Figure4bResult, error) {
	b, err := engine.ByName("imagenet")
	if err != nil {
		return nil, err
	}
	sys := hardware.DEEP()
	res, err := runCell(b, sys, parallel.DataParallel{FusionBuckets: 4}, false, seed)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("figure4b: no feasible campaign")
	}
	model := res.Models.App[epoch.AppPath]
	cm := analysis.CostModel{Runtime: model.Function, CoresPerRank: float64(sys.CoresPerRank)}
	candidates := []float64{16, 24, 32, 40, 48, 56, 64}
	// Place the constraints mid-range, like the paper's example.
	maxTime := model.Predict(28)
	budget := cm.CoreHours(48)
	constraint := analysis.Constraint{MaxTime: maxTime, Budget: budget}
	fs, err := analysis.Evaluate(model.Function, cm, candidates, constraint)
	if err != nil {
		return nil, err
	}
	best, err := analysis.MostCostEffective(model.Function, cm, candidates, constraint)
	if err != nil {
		return nil, err
	}
	return &Figure4bResult{
		Candidates:   fs,
		MaxTime:      maxTime,
		Budget:       budget,
		Best:         best,
		RuntimeModel: model,
	}, nil
}

// Render formats the Fig. 4b table.
func (r *Figure4bResult) Render() string {
	var b strings.Builder
	b.WriteString("=== Figure 4b: cost-effective configurations (ImageNet, strong scaling, DEEP) ===\n")
	fmt.Fprintf(&b, "T_epoch(x1) = %s\n", r.RuntimeModel.Function)
	fmt.Fprintf(&b, "constraints: max time %.2f s, budget %.2f core-hours\n\n", r.MaxTime, r.Budget)
	t := &Table{Header: []string{"nodes", "time [s]", "cost [core-h]", "time ok", "cost ok", "efficiency", "selected"}}
	for _, f := range r.Candidates {
		sel := ""
		if int(f.Ranks) == int(r.Best.Ranks) {
			sel = "<== most cost-effective"
		}
		t.AddRow(fmt.Sprintf("%.0f", f.Ranks), secs(f.Time), fmt.Sprintf("%.3f", f.Cost),
			fmt.Sprintf("%v", f.TimeOK), fmt.Sprintf("%v", f.CostOK),
			fmt.Sprintf("%.3f", f.Efficiency), sel)
	}
	b.WriteString(t.String())
	return b.String()
}
