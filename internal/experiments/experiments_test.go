package experiments

import (
	"strings"
	"testing"

	"extradeep/internal/mathutil"
)

// Most experiment tests run on a reduced benchmark subset to stay fast;
// the full sweeps are exercised by the benchmark harness (bench_test.go).

func TestCaseStudyAnswersQ1ToQ5(t *testing.T) {
	cs, err := CaseStudy(7)
	if err != nil {
		t.Fatal(err)
	}
	// Q1: a concrete prediction at 40 ranks exists and is larger than the
	// baseline epoch time (weak scaling grows).
	base := cs.Actuals[2]
	if cs.Q1Prediction <= base {
		t.Errorf("Q1 prediction %v not above baseline %v", cs.Q1Prediction, base)
	}
	// Q2: model accuracy at the modeling points ≤5% (paper: 0.1–1.2%).
	for _, ranks := range caseStudyModelingRanks {
		if e := cs.Errors[ranks]; e > 5 {
			t.Errorf("model error at %d ranks = %.1f%%", ranks, e)
		}
	}
	// Q2: predictive power — worst evaluation error under 30% (paper's
	// worst case is 28.8%).
	for _, ranks := range caseStudyEvalRanks {
		if e := cs.Errors[ranks]; e > 30 {
			t.Errorf("prediction error at %d ranks = %.1f%%", ranks, e)
		}
	}
	// Q3: the top-ranked bottleneck is a communication kernel.
	if !strings.Contains(cs.Bottleneck, "MPI") && !strings.Contains(cs.Bottleneck, "nccl") {
		t.Errorf("bottleneck = %q, want a communication kernel", cs.Bottleneck)
	}
	// Q3: communication grows by several × from 2 to 64 ranks (paper:
	// 34.41 → 296.57 s, a factor of 8.6).
	if cs.CommAt64 < 3*cs.CommAt2 {
		t.Errorf("communication growth too weak: %v → %v", cs.CommAt2, cs.CommAt64)
	}
	// Q4: cost at 32 ranks is positive and superlinear vs 2 ranks.
	if cs.Q4CostAt32 <= 0 {
		t.Error("Q4 cost not positive")
	}
	// Q5: under weak scaling the smallest allocation wins (paper: 2).
	if !mathutil.Close(cs.Q5BestRanks, 2) {
		t.Errorf("Q5 = %v ranks, want 2", cs.Q5BestRanks)
	}
	if !strings.Contains(cs.Render(), "Q5") {
		t.Error("Render missing Q5 section")
	}
}

func TestFigure3ConfidenceIntervals(t *testing.T) {
	f, err := Figure3(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != len(caseStudyModelingRanks)+len(caseStudyEvalRanks) {
		t.Fatalf("points = %d", len(f.Points))
	}
	within := 0
	for _, p := range f.Points {
		if p.CILo > p.Predicted || p.CIHi < p.Predicted {
			t.Errorf("ranks %d: CI [%v,%v] excludes prediction %v", p.Ranks, p.CILo, p.CIHi, p.Predicted)
		}
		if p.WithinCI {
			within++
		}
	}
	// As in the paper's Fig. 3, most (but not necessarily all) measured
	// values fall inside the 95% CI.
	if within < len(f.Points)/2 {
		t.Errorf("only %d/%d measurements within CI", within, len(f.Points))
	}
	if !strings.Contains(f.Render(), "95% CI") {
		t.Error("Render missing CI column")
	}
}

func TestFigure3ErrorGrowsWithDistance(t *testing.T) {
	f, err := Figure3(7)
	if err != nil {
		t.Fatal(err)
	}
	// Median error over the far evaluation points exceeds the median
	// over the modeling points.
	var modelErrs, farErrs []float64
	for _, p := range f.Points {
		if p.Modeling {
			modelErrs = append(modelErrs, p.ErrorPct)
		} else if p.Ranks >= 40 {
			farErrs = append(farErrs, p.ErrorPct)
		}
	}
	if medianOf(farErrs) <= medianOf(modelErrs) {
		t.Errorf("far-point error (%v) should exceed modeling error (%v)",
			medianOf(farErrs), medianOf(modelErrs))
	}
}

func TestFigure5ShapesHold(t *testing.T) {
	f, err := Figure5(7, "cifar10", "imdb")
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []string{"data", "tensor", "pipeline"} {
		byNode, ok := f.MPE[strat]
		if !ok {
			t.Fatalf("no MPE for %s", strat)
		}
		// Model accuracy region (2–10 nodes) must be tight (paper:
		// 0.4–1.4%; allow 6% under simulation noise).
		for _, n := range f.ModelingNodes {
			if v := byNode[n]; v > 6 {
				t.Errorf("%s: model accuracy at %d nodes = %.1f%%", strat, n, v)
			}
		}
		// Predictive power at 64 nodes stays below 60%.
		if v := byNode[64]; v > 60 {
			t.Errorf("%s: MPE at 64 nodes = %.1f%%", strat, v)
		}
	}
	if !strings.Contains(f.Render(), "tensor") {
		t.Error("Render missing strategy column")
	}
}

func TestFigure6BothSystemsCovered(t *testing.T) {
	f, err := Figure6(7, "cifar10")
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []string{"DEEP", "JURECA"} {
		byNode, ok := f.MPE[sys]
		if !ok || len(byNode) == 0 {
			t.Fatalf("no MPE for %s", sys)
		}
		// Model accuracy tight at small node counts.
		if v := byNode[2]; v > 6 {
			t.Errorf("%s: accuracy at 2 nodes = %.1f%%", sys, v)
		}
	}
	if !strings.Contains(f.Render(), "JURECA") {
		t.Error("Render missing JURECA column")
	}
}

func TestFigure7PerBenchmark(t *testing.T) {
	f, err := Figure7(7, "cifar10", "imdb")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Error) != 2 {
		t.Fatalf("benchmarks = %d", len(f.Error))
	}
	for bench, byNode := range f.Error {
		if len(byNode) == 0 {
			t.Errorf("%s: no errors recorded", bench)
		}
		for n, v := range byNode {
			if v < 0 || v > 100 {
				t.Errorf("%s at %d nodes: error %.1f%% out of range", bench, n, v)
			}
		}
	}
}

func TestFigure8MatchesPaperShape(t *testing.T) {
	f, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(f.Rows))
	}
	byName := make(map[string]Figure8Row)
	for _, r := range f.Rows {
		byName[r.Benchmark] = r
		if r.SampledExec >= r.StandardExec {
			t.Errorf("%s: sampling did not reduce profiled time", r.Benchmark)
		}
		if r.StandardProfiling <= r.SampledProfiling {
			t.Errorf("%s: profiling overheads inverted", r.Benchmark)
		}
	}
	// Fig. 8 orderings: ImageNet ≫ everything; IMDB shortest; savings
	// highest for ImageNet, lowest for IMDB.
	if byName["imagenet"].StandardExec < 5*byName["cifar10"].StandardExec {
		t.Error("ImageNet should dwarf CIFAR-10")
	}
	if byName["imdb"].StandardExec > byName["cifar10"].StandardExec {
		t.Error("IMDB should be the shortest benchmark")
	}
	if byName["imagenet"].Savings <= byName["imdb"].Savings {
		t.Error("savings should be largest for the longest benchmark")
	}
	// Average savings near the paper's 94.9%.
	if f.AvgSavings < 0.85 || f.AvgSavings > 0.995 {
		t.Errorf("average savings = %v, want ≈0.949", f.AvgSavings)
	}
}

func TestFigure4bFeasibleWindow(t *testing.T) {
	f, err := Figure4b(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Candidates) != 7 {
		t.Fatalf("candidates = %d", len(f.Candidates))
	}
	// Training time decreases with nodes (strong scaling).
	for i := 1; i < len(f.Candidates); i++ {
		if f.Candidates[i].Time >= f.Candidates[i-1].Time {
			t.Errorf("time not decreasing at %v nodes", f.Candidates[i].Ranks)
		}
	}
	// Cost increases with nodes.
	for i := 1; i < len(f.Candidates); i++ {
		if f.Candidates[i].Cost <= f.Candidates[i-1].Cost {
			t.Errorf("cost not increasing at %v nodes", f.Candidates[i].Ranks)
		}
	}
	// The constraints exclude at least one candidate on each side, and
	// the selected configuration is feasible.
	var timeInfeasible, costInfeasible bool
	for _, c := range f.Candidates {
		if !c.TimeOK {
			timeInfeasible = true
		}
		if !c.CostOK {
			costInfeasible = true
		}
	}
	if !timeInfeasible || !costInfeasible {
		t.Error("constraints should carve a proper feasible window")
	}
	if !f.Best.Feasible() {
		t.Error("selected configuration infeasible")
	}
	if !strings.Contains(f.Render(), "most cost-effective") {
		t.Error("Render missing selection marker")
	}
}

func TestTable2Shapes(t *testing.T) {
	r, err := Table2(7, "cifar10")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	groups := make(map[string]map[string]Table2Row)
	for _, row := range r.Rows {
		if groups[row.Key.Group] == nil {
			groups[row.Key.Group] = make(map[string]Table2Row)
		}
		groups[row.Key.Group][string(row.Key.Metric)] = row
		if row.Models <= 0 {
			t.Errorf("%v: no models", row.Key)
		}
	}
	for _, want := range []string{"CUDA kernels", "MPI", "Memory ops.", "OS func.", "NVTX func."} {
		if groups[want] == nil {
			t.Errorf("missing group %s", want)
		}
	}
	// Paper's findings: visits are easier to predict than time, and MPI
	// time is the hardest.
	cuda := groups["CUDA kernels"]
	if cuda["visits"].MPE[64] > cuda["time"].MPE[64] {
		t.Error("visits should be easier to predict than time")
	}
	if mpi, ok := groups["MPI"]; ok {
		if mpi["time"].MPE[64] < cuda["time"].MPE[64] {
			t.Error("MPI time should be the hardest to predict")
		}
	}
	if !strings.Contains(r.Render(), "CUDA kernels") {
		t.Error("Render missing CUDA row")
	}
}

func TestSummaryHeadline(t *testing.T) {
	s, err := Summary(7, "cifar10", "imdb")
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 97.6% model accuracy, 93.6% prediction accuracy. Allow wide
	// bands for the simulated substrate.
	if s.ModelAccuracy < 90 || s.ModelAccuracy > 100 {
		t.Errorf("model accuracy = %.1f%%", s.ModelAccuracy)
	}
	if s.PredictionAccuracy < 70 || s.PredictionAccuracy > 100 {
		t.Errorf("prediction accuracy = %.1f%%", s.PredictionAccuracy)
	}
	if s.ModelAccuracy <= s.PredictionAccuracy {
		t.Error("model accuracy should exceed prediction accuracy")
	}
	if !strings.Contains(s.Render(), "97.6%") {
		t.Error("Render missing paper reference")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	out := tab.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], "-") {
		t.Error("missing separator line")
	}
	// Columns aligned: header width adapts to widest cell.
	if !strings.HasPrefix(lines[0], "a  ") {
		t.Errorf("unexpected header %q", lines[0])
	}
}

func TestFeasibleRanksFiltersInfeasible(t *testing.T) {
	// With a dataset smaller than the global batch no configuration is
	// feasible; with the standard setup all are.
	f5, err := Figure5(7, "imdb")
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.MPE["data"]) == 0 {
		t.Error("no feasible points for imdb")
	}
}
