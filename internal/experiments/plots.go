package experiments

import (
	"fmt"

	"extradeep/internal/plot"
	"extradeep/internal/simulator/dataset"
	"extradeep/internal/simulator/parallel"
)

// Chart renders Fig. 3 as an SVG line chart: the model curve with its 95%
// confidence band plus the measured values as markers.
func (r *Figure3Result) Chart() *plot.LineChart {
	var xs, pred, lo, hi, meas []float64
	for _, p := range r.Points {
		xs = append(xs, float64(p.Ranks))
		pred = append(pred, p.Predicted)
		lo = append(lo, p.CILo)
		hi = append(hi, p.CIHi)
		meas = append(meas, p.Measured)
	}
	return &plot.LineChart{
		Title:  "Figure 3: training time per epoch (model vs. measured)",
		XLabel: "MPI ranks",
		YLabel: "training time per epoch [s]",
		LogX:   true,
		Series: []plot.Series{
			{Name: "model (95% CI)", X: xs, Y: pred, Lo: lo, Hi: hi},
			{Name: "measured", X: xs, Y: meas, Markers: true},
		},
	}
}

// mpeSeries converts a node→MPE map into an aligned series.
func mpeSeries(name string, byNode map[int]float64) plot.Series {
	s := plot.Series{Name: name, Markers: true}
	for _, n := range sortedIntKeys(byNode) {
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, byNode[n])
	}
	return s
}

// Chart renders Fig. 5 as an SVG line chart of MPE per strategy.
func (r *Figure5Result) Chart() *plot.LineChart {
	c := &plot.LineChart{
		Title:  "Figure 5: MPE of training-time models per parallel strategy (JURECA)",
		XLabel: "nodes",
		YLabel: "median percentage error [%]",
		LogX:   true,
	}
	for _, strat := range parallel.Names() {
		if byNode, ok := r.MPE[strat]; ok && len(byNode) > 0 {
			c.Series = append(c.Series, mpeSeries(strat, byNode))
		}
	}
	return c
}

// Chart renders Fig. 6 as an SVG line chart of MPE per system.
func (r *Figure6Result) Chart() *plot.LineChart {
	c := &plot.LineChart{
		Title:  "Figure 6: MPE of training-time models per system (data parallelism)",
		XLabel: "nodes",
		YLabel: "median percentage error [%]",
		LogX:   true,
	}
	for _, sys := range []string{"DEEP", "JURECA"} {
		if byNode, ok := r.MPE[sys]; ok && len(byNode) > 0 {
			c.Series = append(c.Series, mpeSeries(sys, byNode))
		}
	}
	return c
}

// Chart renders Fig. 7 as an SVG line chart of per-benchmark error.
func (r *Figure7Result) Chart() *plot.LineChart {
	c := &plot.LineChart{
		Title:  "Figure 7: predictive power per benchmark (DEEP, data parallelism)",
		XLabel: "nodes",
		YLabel: "percentage error [%]",
		LogX:   true,
	}
	for _, bench := range dataset.Names() {
		if byNode, ok := r.Error[bench]; ok && len(byNode) > 0 {
			c.Series = append(c.Series, mpeSeries(bench, byNode))
		}
	}
	return c
}

// Chart renders Fig. 8 as a grouped bar chart on a log scale, matching the
// paper's presentation.
func (r *Figure8Result) Chart() *plot.BarChart {
	c := &plot.BarChart{
		Title:       "Figure 8: profiling overhead, standard vs. efficient sampling (64 nodes)",
		YLabel:      "median time per epoch [s] (log)",
		SeriesNames: []string{"std exec", "std profiling", "sampled exec", "sampled profiling"},
		LogY:        true,
	}
	for _, row := range r.Rows {
		c.Groups = append(c.Groups, plot.BarGroup{
			Label: row.Benchmark,
			Values: []float64{
				row.StandardExec, row.StandardProfiling,
				row.SampledExec, row.SampledProfiling,
			},
		})
	}
	return c
}

// Charts renders Fig. 4b as two SVG line charts (training time and cost
// over the candidate node counts, with the feasibility constraints drawn
// as horizontal reference lines).
func (r *Figure4bResult) Charts() (timeChart, costChart *plot.LineChart) {
	var xs, times, costs []float64
	for _, f := range r.Candidates {
		xs = append(xs, f.Ranks)
		times = append(times, f.Time)
		costs = append(costs, f.Cost)
	}
	constTime := make([]float64, len(xs))
	constBudget := make([]float64, len(xs))
	for i := range xs {
		constTime[i] = r.MaxTime
		constBudget[i] = r.Budget
	}
	timeChart = &plot.LineChart{
		Title:  "Figure 4b: training time vs. target time",
		XLabel: "nodes",
		YLabel: "training time [s]",
		Series: []plot.Series{
			{Name: "training time", X: xs, Y: times, Markers: true},
			{Name: fmt.Sprintf("target time (%.0f s)", r.MaxTime), X: xs, Y: constTime},
		},
	}
	costChart = &plot.LineChart{
		Title:  "Figure 4b: training cost vs. budget",
		XLabel: "nodes",
		YLabel: "training cost [core-h]",
		Series: []plot.Series{
			{Name: "training cost", X: xs, Y: costs, Markers: true},
			{Name: fmt.Sprintf("budget (%.2f core-h)", r.Budget), X: xs, Y: constBudget},
		},
	}
	return timeChart, costChart
}
