package experiments

import (
	"fmt"
	"strings"

	"extradeep/internal/baseline"
	"extradeep/internal/core"
	"extradeep/internal/epoch"
	"extradeep/internal/mathutil"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

// BaselineRow compares the three approaches at one evaluation scale.
type BaselineRow struct {
	Ranks int
	// Actual is the measured median training time per epoch.
	Actual float64
	// ExtraDeep, FullProfiling and Analytical are the three predictions.
	ExtraDeep, FullProfiling, Analytical float64
	// Errors in percent.
	ExtraDeepErr, FullProfilingErr, AnalyticalErr float64
}

// BaselinesResult compares Extra-Deep against the two baseline approaches
// the paper discusses: classic full-run empirical modeling (Extra-P style)
// and first-principles analytical modeling (PALEO/ParaDL style). The
// paper's position — empirical sampling matches full-run accuracy at a
// fraction of the profiling cost, while analytical models are cheap but
// systematically optimistic — is what this experiment quantifies.
type BaselinesResult struct {
	Benchmark string
	Rows      []BaselineRow
	// ProfiledSecondsSampled and ProfiledSecondsFull are the simulated
	// execution time spent collecting the empirical measurements.
	ProfiledSecondsSampled float64
	ProfiledSecondsFull    float64
	// MPE per approach over the evaluation rows.
	ExtraDeepMPE, FullProfilingMPE, AnalyticalMPE float64
}

// Baselines runs the comparison for one benchmark on DEEP (weak scaling).
func Baselines(seed int64, benchName string) (*BaselinesResult, error) {
	b, err := engine.ByName(benchName)
	if err != nil {
		return nil, err
	}
	sys := hardware.DEEP()
	strat := parallel.DataParallel{FusionBuckets: 4}
	cfg := engine.RunConfig{
		System:      sys,
		Strategy:    strat,
		WeakScaling: true,
		Seed:        seed,
		SampleRanks: 4,
	}

	// Extra-Deep: sampled profiling campaign.
	camp := core.Campaign{
		Benchmark:     b,
		Config:        cfg,
		ModelingRanks: deepModelingRanks,
		EvalRanks:     deepEvalRanks,
		Reps:          5,
	}
	res, err := core.RunCampaign(camp)
	if err != nil {
		return nil, err
	}
	edModel := res.Models.App[epoch.AppPath]

	// Sampled profiling cost: executed (profiled) window per repetition.
	var sampledCost float64
	for _, ranks := range deepModelingRanks {
		c := cfg
		c.Ranks = ranks
		st, err := engine.Stats(b, c)
		if err != nil {
			return nil, err
		}
		// Each repetition profiles ProfileEpochs (2) sampled epochs.
		sampledCost += float64(camp.Reps) * 2 * st.SampledExecPerEpoch
	}

	// Extra-P-style full-run baseline.
	full, err := baseline.FullProfiling(b, cfg, deepModelingRanks, camp.Reps)
	if err != nil {
		return nil, err
	}

	out := &BaselinesResult{
		Benchmark:              benchName,
		ProfiledSecondsSampled: sampledCost,
		ProfiledSecondsFull:    full.ProfiledSeconds,
	}
	var edErrs, fullErrs, anaErrs []float64
	for _, ranks := range deepEvalRanks {
		actual, ok := res.ActualMedian(epoch.AppPath, ranks)
		if !ok || actual == 0 {
			continue
		}
		ana, err := baseline.Analytical(b, sys, strat, ranks, true)
		if err != nil {
			return nil, err
		}
		row := BaselineRow{
			Ranks:         ranks,
			Actual:        actual,
			ExtraDeep:     edModel.Predict(float64(ranks)),
			FullProfiling: full.Model.Predict(float64(ranks)),
			Analytical:    ana.EpochTime,
		}
		row.ExtraDeepErr = mathutil.AbsPercentError(row.ExtraDeep, actual)
		row.FullProfilingErr = mathutil.AbsPercentError(row.FullProfiling, actual)
		row.AnalyticalErr = mathutil.AbsPercentError(row.Analytical, actual)
		out.Rows = append(out.Rows, row)
		edErrs = append(edErrs, row.ExtraDeepErr)
		fullErrs = append(fullErrs, row.FullProfilingErr)
		anaErrs = append(anaErrs, row.AnalyticalErr)
	}
	out.ExtraDeepMPE = medianOf(edErrs)
	out.FullProfilingMPE = medianOf(fullErrs)
	out.AnalyticalMPE = medianOf(anaErrs)
	return out, nil
}

// Render formats the comparison.
func (r *BaselinesResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Baseline comparison: %s, weak scaling, DEEP ===\n", r.Benchmark)
	reduction := 0.0
	if r.ProfiledSecondsSampled > 0 {
		reduction = r.ProfiledSecondsFull / r.ProfiledSecondsSampled
	}
	fmt.Fprintf(&b, "profiled execution: %.1f s (Extra-Deep sampling) vs %.1f s (full-run Extra-P style), %.1fx reduction\n\n",
		r.ProfiledSecondsSampled, r.ProfiledSecondsFull, reduction)
	t := &Table{Header: []string{"ranks", "measured [s]", "Extra-Deep", "err", "full-profiling", "err", "analytical", "err"}}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.Ranks), secs(row.Actual),
			secs(row.ExtraDeep), pct(row.ExtraDeepErr),
			secs(row.FullProfiling), pct(row.FullProfilingErr),
			secs(row.Analytical), pct(row.AnalyticalErr))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nMPE over evaluation points: Extra-Deep %s | full-profiling %s | analytical %s\n",
		pct(r.ExtraDeepMPE), pct(r.FullProfilingMPE), pct(r.AnalyticalMPE))
	b.WriteString("\nReading: the sampled empirical model matches full-run profiling at a fraction\n")
	b.WriteString("of the measurement cost; the first-principles analytical model needs no\n")
	b.WriteString("measurements but is systematically optimistic (peak FLOPS, ideal network,\n")
	b.WriteString("no framework overhead) — the paper's case for empirical modeling.\n")
	return b.String()
}
