// Package instrument implements Extra-Deep's built-in automated
// instrumentation tool (step (1) of the analysis process, Fig. 1): it
// statically analyzes Python training scripts and injects NVIDIA Tools
// Extension (NVTX) annotations so that user-defined functions appear in
// profiles and training steps/epochs are delimited by marks.
//
// The transformer is line-based and deliberately conservative:
//
//   - an `import nvtx` is added after the last top-level import;
//   - every function definition gains an `@nvtx.annotate("<name>")`
//     decorator (unless one is already present);
//   - loops that look like epoch or training-step loops get an
//     `nvtx.mark(...)` as the first statement of their body, producing
//     the step/epoch timestamps the sampling strategy relies on.
//
// Only Python files are supported, matching the paper ("as almost all of
// today's deep learning codes are written in Python").
package instrument

import (
	"errors"
	"fmt"
	"regexp"
	"strings"
)

// Report summarizes what the instrumentation changed.
type Report struct {
	// FunctionsAnnotated lists the function names that received an
	// @nvtx.annotate decorator.
	FunctionsAnnotated []string
	// EpochLoops and StepLoops count the loop bodies that received
	// epoch/step marks.
	EpochLoops int
	StepLoops  int
	// ImportAdded reports whether `import nvtx` was inserted.
	ImportAdded bool
}

// ErrNotPython is returned for files that do not look like Python source.
var ErrNotPython = errors.New("instrument: only Python sources are supported")

var (
	defRe    = regexp.MustCompile(`^(\s*)def\s+([A-Za-z_][A-Za-z0-9_]*)\s*\(`)
	forRe    = regexp.MustCompile(`^(\s*)for\s+(.+?)\s+in\s+(.+):\s*(#.*)?$`)
	importRe = regexp.MustCompile(`^(import\s+\w|from\s+\w+[\w.]*\s+import)`)
)

// IsPythonFile reports whether the file name has a Python extension.
func IsPythonFile(name string) bool { return strings.HasSuffix(name, ".py") }

// Instrument rewrites the given Python source, returning the instrumented
// source and a report of the injected annotations. fileName is used only
// for the Python check and error messages.
func Instrument(fileName, source string) (string, *Report, error) {
	if !IsPythonFile(fileName) {
		return "", nil, fmt.Errorf("%w: %s", ErrNotPython, fileName)
	}
	lines := strings.Split(source, "\n")
	report := &Report{}
	var out []string

	hasNVTXImport := strings.Contains(source, "import nvtx")
	lastImport := -1
	for i, line := range lines {
		if importRe.MatchString(strings.TrimLeft(line, " \t")) && indentOf(line) == "" {
			lastImport = i
		}
	}

	// pendingMark holds a mark to insert at the first statement of the
	// next-deeper indentation level.
	type pending struct {
		indent string // loop header indent; body must be deeper
		mark   string
	}
	var pend []pending

	flushMarks := func(lineIndent string, isBlank bool) []string {
		var inserted []string
		for len(pend) > 0 {
			p := pend[len(pend)-1]
			if isBlank {
				break
			}
			if len(lineIndent) > len(p.indent) {
				inserted = append(inserted, lineIndent+p.mark)
				pend = pend[:len(pend)-1]
				continue
			}
			// Dedent without a body (empty loop): drop the mark.
			pend = pend[:len(pend)-1]
		}
		return inserted
	}

	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		isBlank := trimmed == "" || strings.HasPrefix(trimmed, "#")

		// Insert pending loop-body marks before the first real statement
		// of the loop body.
		out = append(out, flushMarks(indentOf(line), isBlank)...)

		if m := defRe.FindStringSubmatch(line); m != nil {
			indent, name := m[1], m[2]
			if !previousLineHasNVTXDecorator(out) {
				out = append(out, fmt.Sprintf(`%s@nvtx.annotate("%s")`, indent, name))
				report.FunctionsAnnotated = append(report.FunctionsAnnotated, name)
			}
		}
		if m := forRe.FindStringSubmatch(line); m != nil {
			indent, loopVar, iterable := m[1], m[2], m[3]
			switch classifyLoop(loopVar, iterable) {
			case loopEpoch:
				pend = append(pend, pending{indent: indent, mark: `nvtx.mark("extradeep:epoch")`})
				report.EpochLoops++
			case loopStep:
				pend = append(pend, pending{indent: indent, mark: `nvtx.mark("extradeep:step")`})
				report.StepLoops++
			}
		}

		out = append(out, line)

		if i == lastImport && !hasNVTXImport {
			out = append(out, "import nvtx")
			report.ImportAdded = true
			hasNVTXImport = true
		}
	}
	// No imports at all: prepend.
	if !hasNVTXImport {
		out = append([]string{"import nvtx"}, out...)
		report.ImportAdded = true
	}
	return strings.Join(out, "\n"), report, nil
}

func indentOf(line string) string {
	for i, r := range line {
		if r != ' ' && r != '\t' {
			return line[:i]
		}
	}
	return line
}

func previousLineHasNVTXDecorator(out []string) bool {
	for i := len(out) - 1; i >= 0; i-- {
		t := strings.TrimSpace(out[i])
		if t == "" {
			continue
		}
		if strings.HasPrefix(t, "@") {
			return strings.Contains(t, "nvtx")
		}
		return false
	}
	return false
}

type loopKind int

const (
	loopOther loopKind = iota
	loopEpoch
	loopStep
)

// classifyLoop decides whether a for-loop iterates over epochs or
// training steps, from its variable names and iterable expression.
func classifyLoop(loopVar, iterable string) loopKind {
	v := strings.ToLower(loopVar)
	it := strings.ToLower(iterable)
	if strings.Contains(v, "epoch") || strings.Contains(it, "epoch") {
		return loopEpoch
	}
	for _, marker := range []string{"batch", "step", "_ds", "dataset", "dataloader", "loader"} {
		if strings.Contains(v, marker) || strings.Contains(it, marker) {
			return loopStep
		}
	}
	return loopOther
}
