package instrument

import (
	"errors"
	"strings"
	"testing"
)

const sampleTraining = `import tensorflow as tf
import horovod.tensorflow as hvd

def training_step(images, labels, first_batch):
    with tf.GradientTape() as tape:
        loss = model(images)
    return loss

def train(self):
    for epoch in range(EPOCHS):
        for batch, (images, labels) in enumerate(train_ds.take(steps)):
            loss_value = training_step(images, labels, batch == 0)

def test(self):
    for images, labels in test_ds:
        evaluate(images, labels)
`

func TestInstrumentAddsImport(t *testing.T) {
	out, rep, err := Instrument("train.py", sampleTraining)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ImportAdded {
		t.Error("import not reported")
	}
	if !strings.Contains(out, "import nvtx") {
		t.Error("import nvtx missing")
	}
	// After the last top-level import, before the first def.
	idx := strings.Index(out, "import nvtx")
	if idx > strings.Index(out, "def training_step") {
		t.Error("import placed after code")
	}
}

func TestInstrumentDecoratesFunctions(t *testing.T) {
	out, rep, err := Instrument("train.py", sampleTraining)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []string{"training_step", "train", "test"} {
		want := `@nvtx.annotate("` + fn + `")`
		if !strings.Contains(out, want) {
			t.Errorf("decorator %s missing", want)
		}
	}
	if len(rep.FunctionsAnnotated) != 3 {
		t.Errorf("annotated %d functions, want 3: %v", len(rep.FunctionsAnnotated), rep.FunctionsAnnotated)
	}
}

func TestInstrumentMarksEpochAndStepLoops(t *testing.T) {
	out, rep, err := Instrument("train.py", sampleTraining)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EpochLoops != 1 {
		t.Errorf("epoch loops = %d, want 1", rep.EpochLoops)
	}
	// The step loop inside train() plus the test() loop over test_ds.
	if rep.StepLoops != 2 {
		t.Errorf("step loops = %d, want 2", rep.StepLoops)
	}
	if !strings.Contains(out, `nvtx.mark("extradeep:epoch")`) {
		t.Error("epoch mark missing")
	}
	if !strings.Contains(out, `nvtx.mark("extradeep:step")`) {
		t.Error("step mark missing")
	}
}

func TestInstrumentMarkPlacedInsideLoopBody(t *testing.T) {
	out, _, err := Instrument("train.py", sampleTraining)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	for i, l := range lines {
		if strings.Contains(l, `nvtx.mark("extradeep:epoch")`) {
			// The mark must be indented deeper than its loop header.
			var header string
			for j := i - 1; j >= 0; j-- {
				if strings.Contains(lines[j], "for epoch in") {
					header = lines[j]
					break
				}
			}
			if header == "" {
				t.Fatal("no epoch loop header above the mark")
			}
			if len(indentOf(l)) <= len(indentOf(header)) {
				t.Errorf("mark not inside loop body: %q vs %q", l, header)
			}
		}
	}
}

func TestInstrumentIdempotentDecorators(t *testing.T) {
	out1, _, err := Instrument("train.py", sampleTraining)
	if err != nil {
		t.Fatal(err)
	}
	out2, rep2, err := Instrument("train.py", out1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.FunctionsAnnotated) != 0 {
		t.Errorf("re-instrumentation decorated %v again", rep2.FunctionsAnnotated)
	}
	if strings.Count(out2, `@nvtx.annotate("train")`) != 1 {
		t.Error("duplicate decorators after re-instrumentation")
	}
	if rep2.ImportAdded {
		t.Error("import added twice")
	}
}

func TestInstrumentRejectsNonPython(t *testing.T) {
	if _, _, err := Instrument("train.go", "package main"); !errors.Is(err, ErrNotPython) {
		t.Errorf("err = %v, want ErrNotPython", err)
	}
}

func TestInstrumentNoImports(t *testing.T) {
	src := "def f():\n    pass\n"
	out, rep, err := Instrument("f.py", src)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ImportAdded {
		t.Error("import not added")
	}
	if !strings.HasPrefix(out, "import nvtx") {
		t.Error("import should be prepended when no imports exist")
	}
}

func TestInstrumentEmptyLoopBodyDropsMark(t *testing.T) {
	src := "for epoch in range(3):\n    pass\nx = 1\n"
	out, _, err := Instrument("f.py", src)
	if err != nil {
		t.Fatal(err)
	}
	// The mark goes before `pass` (the body), never before `x = 1`.
	lines := strings.Split(out, "\n")
	for i, l := range lines {
		if strings.Contains(l, "nvtx.mark") {
			if i+1 >= len(lines) || strings.TrimSpace(lines[i+1]) != "pass" {
				t.Errorf("mark misplaced before %q", lines[i+1])
			}
		}
	}
}

func TestInstrumentPreservesAllOriginalLines(t *testing.T) {
	out, _, err := Instrument("train.py", sampleTraining)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sampleTraining, "\n") {
		if !strings.Contains(out, line) {
			t.Errorf("original line lost: %q", line)
		}
	}
}

func TestClassifyLoop(t *testing.T) {
	cases := []struct {
		v, it string
		want  loopKind
	}{
		{"epoch", "range(EPOCHS)", loopEpoch},
		{"e", "range(num_epochs)", loopEpoch},
		{"batch, (i, l)", "enumerate(train_ds.take(s))", loopStep},
		{"x", "dataloader", loopStep},
		{"i", "range(10)", loopOther},
	}
	for _, c := range cases {
		if got := classifyLoop(c.v, c.it); got != c.want {
			t.Errorf("classifyLoop(%q, %q) = %v, want %v", c.v, c.it, got, c.want)
		}
	}
}

func TestIsPythonFile(t *testing.T) {
	if !IsPythonFile("a.py") || IsPythonFile("a.go") || IsPythonFile("py") {
		t.Error("IsPythonFile wrong")
	}
}
