#!/bin/sh
# verify.sh — the pre-PR gate: format, vet, build, race-enabled tests, and
# the project-native static-analysis suite. Every step must pass before a
# change ships; ROADMAP.md documents this as the tier-1 contract.
set -eu

cd "$(dirname "$0")"

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# The concurrency and determinism contracts (stable results across worker
# counts, prompt cancellation, no goroutine leaks, order-independent
# aggregation and model selection) get an extra stress pass: shuffled test
# order, run twice, under the race detector, across the deterministic core
# of the modeling path.
shuffle_pkgs="./internal/pipeline/... ./internal/aggregate/... ./internal/epoch/... ./internal/modeling/... ./internal/pmnf/... ./internal/analysis/..."
echo "==> go test -race -shuffle=on -count=2 (pipeline + modeling core)"
go test -race -shuffle=on -count=2 $shuffle_pkgs

# The edlint parallel loader type-checks packages concurrently and its
# incremental cache must stay byte-identical to a cold run; both contracts
# get a dedicated shuffled race pass (the full ./... race run above covers
# the rest of the lint suite once).
echo "==> go test -race -shuffle=on (edlint parallel loader + cache parity)"
go test -race -shuffle=on -run 'TestLoadModuleWorkersParity|TestLintCacheParity|TestPropLintCacheParity' ./internal/lint

# edcheck: the propcheck invariant suites (TestProp*) rerun in their
# long-haul configuration — 5x the per-property iteration count under a
# 55-second budget. Any failure prints a one-line EDCHECK_SEED replay
# recipe; the budget keeps the gate cheap as suites accumulate.
echo "==> edcheck (long-haul propcheck invariants: 5x iterations, 55s budget)"
go run ./cmd/edcheck

# Coverage-regression gate: per-package statement coverage must not drop
# more than 2 points below the committed baseline. Refresh the baseline
# deliberately (see the regeneration hint below) when coverage moves for a
# good reason; silent erosion fails the gate.
echo "==> coverage regression (baseline: COVERAGE_baseline.txt, 2pt tolerance)"
cover_current=$(mktemp)
trap 'rm -f "$cover_current"' EXIT
go test -cover ./internal/... |
	awk '$1 == "ok" { for (i = 1; i <= NF; i++) if ($i == "coverage:") { p = $(i + 1); sub(/%/, "", p); print $2, p } }' |
	sort >"$cover_current"
awk '
	NR == FNR { base[$1] = $2; next }
	{ cur[$1] = $2 }
	END {
		bad = 0
		for (pkg in base) {
			if (!(pkg in cur)) {
				printf "coverage: %s has a baseline (%.1f%%) but was missing from this run\n", pkg, base[pkg]
				bad = 1
			} else if (cur[pkg] < base[pkg] - 2) {
				printf "coverage regression: %s %.1f%% is more than 2pt below the %.1f%% baseline\n", pkg, cur[pkg], base[pkg]
				bad = 1
			}
		}
		for (pkg in cur) if (!(pkg in base)) {
			printf "coverage: note: %s (%.1f%%) is new — add it to COVERAGE_baseline.txt\n", pkg, cur[pkg]
		}
		if (bad) {
			print "coverage gate failed; after a deliberate change, refresh with:"
			print "  go test -cover ./internal/... | awk <see verify.sh> | sort > COVERAGE_baseline.txt"
		}
		exit bad
	}' COVERAGE_baseline.txt "$cover_current"

# edlint-bench: the full-module lint (parse + type-check + 10-analyzer
# suite) is itself part of the gate, so it must stay cheap. Since edlint
# v3 the run is incremental: the stage builds the binary once, runs it
# cold into a fresh cache directory (populating the stdlib export bundle
# and the findings cache), then runs it again warm. The cold run gets a
# 20-second budget (down from 60s pre-cache) and the warm run a 5-second
# one — a warm miss here means the content-addressed cache broke.
# BENCH_lint.json tracks the finer-grained trajectory via
# BenchmarkLintRepo / BenchmarkLintRepoWarm / BenchmarkLintRepoWarmLoad.
echo "==> edlint ./... (edlint-bench: cold-then-warm, 20s/5s budgets)"
lint_bin=$(mktemp)
lint_cache=$(mktemp -d)
trap 'rm -f "$cover_current" "$lint_bin"; rm -rf "$lint_cache"' EXIT
go build -o "$lint_bin" ./cmd/edlint
lint_start=$(date +%s)
"$lint_bin" -cachedir "$lint_cache" ./...
lint_cold=$(($(date +%s) - lint_start))
lint_start=$(date +%s)
"$lint_bin" -cachedir "$lint_cache" ./...
lint_warm=$(($(date +%s) - lint_start))
echo "edlint-bench: cold ${lint_cold}s, warm ${lint_warm}s"
if [ "$lint_cold" -gt 20 ]; then
	echo "edlint-bench: cold run exceeded the 20s budget (${lint_cold}s) — profile with 'go test -bench BenchmarkLintRepo ./internal/lint'" >&2
	exit 1
fi
if [ "$lint_warm" -gt 5 ]; then
	echo "edlint-bench: warm run exceeded the 5s budget (${lint_warm}s) — the incremental cache is not hitting; profile with 'go test -bench BenchmarkLintRepoWarm ./internal/lint'" >&2
	exit 1
fi

# Fuzz smoke: the ingestion invariant ("valid profile or error — never a
# panic, never a NaN smuggled into the pipeline") must survive a short
# native-fuzzing burst on every loader fuzz target.
echo "==> fuzz smoke (5s per target)"
go test -run='^$' -fuzz='^FuzzReadCSV$' -fuzztime=5s ./internal/importer
go test -run='^$' -fuzz='^FuzzProfileRead$' -fuzztime=5s ./internal/profile
go test -run='^$' -fuzz='^FuzzParseFileName$' -fuzztime=5s ./internal/profile

echo "verify.sh: all gates passed"
