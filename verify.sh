#!/bin/sh
# verify.sh — the pre-PR gate: format, vet, build, race-enabled tests, and
# the project-native static-analysis suite. Every step must pass before a
# change ships; ROADMAP.md documents this as the tier-1 contract.
set -eu

cd "$(dirname "$0")"

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> edlint ./..."
go run ./cmd/edlint ./...

echo "verify.sh: all gates passed"
