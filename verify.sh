#!/bin/sh
# verify.sh — the pre-PR gate: format, vet, build, race-enabled tests, and
# the project-native static-analysis suite. Every step must pass before a
# change ships; ROADMAP.md documents this as the tier-1 contract.
set -eu

cd "$(dirname "$0")"

# Failure classification: every stage declares its name and class via
# begin() before running, and the single EXIT trap below both cleans up
# every temp artifact and — on a non-zero exit — prints one machine-
# greppable line naming the stage and the failure class (build / test /
# lint / budget-exceeded), so a red gate is diagnosable from the last
# line of output alone.
stage="startup"
class="build"
cover_current=""
lint_bin=""
lint_cache=""
fit_bin=""

cleanup() {
	code=$?
	[ -n "$cover_current" ] && rm -f "$cover_current"
	[ -n "$lint_bin" ] && rm -f "$lint_bin"
	[ -n "$lint_cache" ] && rm -rf "$lint_cache"
	[ -n "$fit_bin" ] && rm -f "$fit_bin"
	if [ "$code" -ne 0 ]; then
		echo "verify.sh: FAILED stage=$stage class=$class" >&2
	fi
	exit "$code"
}
trap cleanup EXIT

# begin <stage> <class> <banner>
begin() {
	stage=$1
	class=$2
	echo "==> $3"
}

begin gofmt lint "gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

begin vet lint "go vet ./..."
go vet ./...

begin build build "go build ./..."
go build ./...

begin test test "go test -race ./..."
go test -race ./...

# The concurrency and determinism contracts (stable results across worker
# counts, prompt cancellation, no goroutine leaks, order-independent
# aggregation and model selection) get an extra stress pass: shuffled test
# order, run twice, under the race detector, across the deterministic core
# of the modeling path.
shuffle_pkgs="./internal/pipeline/... ./internal/aggregate/... ./internal/epoch/... ./internal/modeling/... ./internal/pmnf/... ./internal/analysis/... ./internal/serve/..."
begin shuffle test "go test -race -shuffle=on -count=2 (pipeline + modeling core)"
go test -race -shuffle=on -count=2 $shuffle_pkgs

# The edlint parallel loader type-checks packages concurrently and its
# incremental cache must stay byte-identical to a cold run; both contracts
# get a dedicated shuffled race pass (the full ./... race run above covers
# the rest of the lint suite once). The perf analyzer family's parity
# property rides along: interprocedural traces must not depend on worker
# count or cache temperature.
begin lint-parity test "go test -race -shuffle=on (edlint parallel loader + cache parity)"
go test -race -shuffle=on -run 'TestLoadModuleWorkersParity|TestLintCacheParity|TestPropLintCacheParity|TestPropPerfAnalyzersParity' ./internal/lint

# resilience: the randomized fault-schedule invariants — every run either
# completes, completes partially with all failures classified, or fails
# with a typed error; resume after any interruption is byte-identical;
# injector and retrier replay exactly from their seeds — rerun under the
# race detector as a dedicated stage with their own wall-time budget, so
# a hang in the chaos path (a stalled stage, a leaked goroutine blocking
# exit) surfaces as budget-exceeded rather than wedging the whole gate.
begin resilience test "go test -race (fault-schedule propcheck invariants, 120s budget)"
res_start=$(date +%s)
go test -race -run 'TestPropFaultScheduleTrichotomy|TestPropResumeByteIdentical|TestPropCheckpointRoundTrip|TestPropInjectorReplayIdentical|TestPropRetrySleepScheduleReplayable' ./internal/resilience ./internal/pipeline
res_elapsed=$(($(date +%s) - res_start))
echo "resilience: fault-schedule suites passed in ${res_elapsed}s"
if [ "$res_elapsed" -gt 120 ]; then
	class="budget-exceeded"
	echo "resilience: suites exceeded the 120s budget (${res_elapsed}s) — a chaos-path stall or runaway schedule; replay the printed EDCHECK_SEED" >&2
	exit 1
fi

# edcheck: the propcheck invariant suites (TestProp*) rerun in their
# long-haul configuration — 5x the per-property iteration count under a
# 55-second budget. Any failure prints a one-line EDCHECK_SEED replay
# recipe; the budget keeps the gate cheap as suites accumulate.
begin edcheck test "edcheck (long-haul propcheck invariants: 5x iterations, 55s budget)"
go run ./cmd/edcheck

# Coverage-regression gate: per-package statement coverage must not drop
# more than 2 points below the committed baseline. Refresh the baseline
# deliberately (see the regeneration hint below) when coverage moves for a
# good reason; silent erosion fails the gate.
begin coverage test "coverage regression (baseline: COVERAGE_baseline.txt, 2pt tolerance)"
cover_current=$(mktemp)
go test -cover ./internal/... |
	awk '$1 == "ok" { for (i = 1; i <= NF; i++) if ($i == "coverage:") { p = $(i + 1); sub(/%/, "", p); print $2, p } }' |
	sort >"$cover_current"
awk '
	NR == FNR { base[$1] = $2; next }
	{ cur[$1] = $2 }
	END {
		bad = 0
		for (pkg in base) {
			if (!(pkg in cur)) {
				printf "coverage: %s has a baseline (%.1f%%) but was missing from this run\n", pkg, base[pkg]
				bad = 1
			} else if (cur[pkg] < base[pkg] - 2) {
				printf "coverage regression: %s %.1f%% is more than 2pt below the %.1f%% baseline\n", pkg, cur[pkg], base[pkg]
				bad = 1
			}
		}
		for (pkg in cur) if (!(pkg in base)) {
			printf "coverage: note: %s (%.1f%%) is new — add it to COVERAGE_baseline.txt\n", pkg, cur[pkg]
		}
		if (bad) {
			print "coverage gate failed; after a deliberate change, refresh with:"
			print "  go test -cover ./internal/... | awk <see verify.sh> | sort > COVERAGE_baseline.txt"
		}
		exit bad
	}' COVERAGE_baseline.txt "$cover_current"

# edlint-bench: the full-module lint (parse + type-check + 14-analyzer
# suite) is itself part of the gate, so it must stay cheap. Since edlint
# v3 the run is incremental: the stage builds the binary once, runs it
# cold into a fresh cache directory (populating the stdlib export bundle
# and the findings cache), then runs it again warm. The cold run gets a
# 25-second budget (up from 20s when the v4 perf analyzer family joined
# the suite; still far below the 60s pre-cache era) and the warm run a
# 5-second one — a warm miss here means the content-addressed cache broke.
# BENCH_lint.json tracks the finer-grained trajectory via
# BenchmarkLintRepo / BenchmarkLintRepoWarm / BenchmarkLintRepoWarmLoad.
begin edlint lint "edlint ./... (edlint-bench: cold-then-warm, 25s/5s budgets)"
lint_bin=$(mktemp)
lint_cache=$(mktemp -d)
go build -o "$lint_bin" ./cmd/edlint
lint_start=$(date +%s)
"$lint_bin" -cachedir "$lint_cache" ./...
lint_cold=$(($(date +%s) - lint_start))
lint_start=$(date +%s)
"$lint_bin" -cachedir "$lint_cache" ./...
lint_warm=$(($(date +%s) - lint_start))
echo "edlint-bench: cold ${lint_cold}s, warm ${lint_warm}s"
if [ "$lint_cold" -gt 25 ]; then
	class="budget-exceeded"
	echo "edlint-bench: cold run exceeded the 25s budget (${lint_cold}s) — profile with 'go test -bench BenchmarkLintRepo ./internal/lint'" >&2
	exit 1
fi
if [ "$lint_warm" -gt 5 ]; then
	class="budget-exceeded"
	echo "edlint-bench: warm run exceeded the 5s budget (${lint_warm}s) — the incremental cache is not hitting; profile with 'go test -bench BenchmarkLintRepoWarm ./internal/lint'" >&2
	exit 1
fi

# fit-bench: the design-matrix fit engine is the hot path of the whole
# analysis; a perf regression there silently eats the 3x speedup the
# engine exists for. A 3-iteration BenchmarkParallelFit smoke run must
# build and finish inside a 60-second budget (the full 30x trajectory
# lives in BENCH_pipeline.json). Since edlint v4 the run also reports
# allocations (-test.benchmem) and gates allocs/op: the perf analyzers
# police the hot paths statically, and this ceiling catches what escapes
# them dynamically. The v4 cleanup measured ~11.8k allocs/op per
# BuildModels campaign (down from ~15.2k); the ceiling leaves ~10%
# headroom. A build failure fails the stage as class=build via the
# compile step below.
fit_alloc_ceiling=13000
begin fit-bench-build build "go test -c (fit-bench smoke binary)"
fit_bin=$(mktemp)
go test -c -o "$fit_bin" .
begin fit-bench test "BenchmarkParallelFit -benchtime 3x -benchmem (60s budget, allocs/op <= ${fit_alloc_ceiling})"
fit_start=$(date +%s)
fit_out=$("$fit_bin" -test.run '^$' -test.bench BenchmarkParallelFit -test.benchtime 3x -test.benchmem)
fit_elapsed=$(($(date +%s) - fit_start))
echo "$fit_out"
echo "fit-bench: smoke run finished in ${fit_elapsed}s"
if [ "$fit_elapsed" -gt 60 ]; then
	class="budget-exceeded"
	echo "fit-bench: smoke run exceeded the 60s budget (${fit_elapsed}s) — the fit engine regressed; profile with 'go test -bench BenchmarkParallelFit -cpuprofile cpu.out .'" >&2
	exit 1
fi
echo "$fit_out" | awk -v ceiling="$fit_alloc_ceiling" '
	/allocs\/op/ {
		for (i = 2; i <= NF; i++) if ($i == "allocs/op" && $(i - 1) + 0 > ceiling) {
			printf "fit-bench: %s allocates %s allocs/op, above the %d ceiling — an allocation crept into the fit hot path; run '\''go run ./cmd/edlint ./...'\'' and '\''go test -bench BenchmarkParallelFit -benchmem -memprofile mem.out .'\''\n", $1, $(i - 1), ceiling
			bad = 1
		}
	}
	END { exit bad }' || { class="budget-exceeded"; exit 1; }

# serve-bench: the modeling service must answer queries from its
# published snapshot cache, never by re-fitting per request. The stage
# builds the edserve binary (keeping cmd/edserve honest as a compile
# target) and runs a 1-client BenchmarkServe smoke — one settled imdb
# campaign, then 100 predict queries over HTTP — inside a 30-second
# budget. The run writes its measured req/s and p99 latency to
# BENCH_serve.json (regenerate the committed 1/4/16-client trajectory
# with the command recorded inside that file).
begin serve-bench-build build "go build ./cmd/edserve"
serve_bin=$(mktemp)
go build -o "$serve_bin" ./cmd/edserve
begin serve-bench test "BenchmarkServe/clients=1 -benchtime 100x (30s budget) -> BENCH_serve.json"
serve_start=$(date +%s)
EDSERVE_BENCH_OUT="$PWD/BENCH_serve.json" go test -run '^$' -bench 'BenchmarkServe/clients=1$' -benchtime 100x ./internal/serve/
serve_elapsed=$(($(date +%s) - serve_start))
echo "serve-bench: smoke run finished in ${serve_elapsed}s"
if [ "$serve_elapsed" -gt 30 ]; then
	class="budget-exceeded"
	echo "serve-bench: smoke run exceeded the 30s budget (${serve_elapsed}s) — the query path is fitting instead of serving from the snapshot cache; profile with 'go test -bench BenchmarkServe -cpuprofile cpu.out ./internal/serve/'" >&2
	exit 1
fi

# Fuzz smoke: the ingestion invariant ("valid profile or error — never a
# panic, never a NaN smuggled into the pipeline") must survive a short
# native-fuzzing burst on every loader fuzz target, plus the checkpoint
# decoder ("state round-trips or errors — a truncated or bit-flipped
# state file must never panic or load silently wrong").
begin fuzz test "fuzz smoke (5s per target)"
go test -run='^$' -fuzz='^FuzzReadCSV$' -fuzztime=5s ./internal/importer
go test -run='^$' -fuzz='^FuzzProfileRead$' -fuzztime=5s ./internal/profile
go test -run='^$' -fuzz='^FuzzParseFileName$' -fuzztime=5s ./internal/profile
go test -run='^$' -fuzz='^FuzzCheckpointDecode$' -fuzztime=5s ./internal/resilience

echo "verify.sh: all gates passed"
