#!/bin/sh
# verify.sh — the pre-PR gate: format, vet, build, race-enabled tests, and
# the project-native static-analysis suite. Every step must pass before a
# change ships; ROADMAP.md documents this as the tier-1 contract.
set -eu

cd "$(dirname "$0")"

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# The pipeline's concurrency contract (determinism across worker counts,
# prompt cancellation, no goroutine leaks) gets an extra stress pass:
# shuffled test order, run twice, under the race detector.
echo "==> go test -race -shuffle=on -count=2 ./internal/pipeline/..."
go test -race -shuffle=on -count=2 ./internal/pipeline/...

# edlint-bench: the full-module lint (parse + type-check + 10-analyzer
# suite) is itself part of the gate, so it must stay cheap. The stage
# times the run and fails when it blows a generous 60-second budget;
# BENCH_lint.json tracks the finer-grained trajectory via
# BenchmarkLintRepo / BenchmarkAnalyzeOnly in internal/lint.
echo "==> edlint ./... (edlint-bench: 60s budget)"
lint_start=$(date +%s)
go run ./cmd/edlint ./...
lint_elapsed=$(($(date +%s) - lint_start))
echo "edlint-bench: full-repo lint took ${lint_elapsed}s"
if [ "$lint_elapsed" -gt 60 ]; then
	echo "edlint-bench: exceeded the 60s budget (${lint_elapsed}s) — profile with 'go test -bench BenchmarkLintRepo ./internal/lint'" >&2
	exit 1
fi

# Fuzz smoke: the ingestion invariant ("valid profile or error — never a
# panic, never a NaN smuggled into the pipeline") must survive a short
# native-fuzzing burst on every loader fuzz target.
echo "==> fuzz smoke (5s per target)"
go test -run='^$' -fuzz='^FuzzReadCSV$' -fuzztime=5s ./internal/importer
go test -run='^$' -fuzz='^FuzzProfileRead$' -fuzztime=5s ./internal/profile

echo "verify.sh: all gates passed"
