#!/bin/sh
# verify.sh — the pre-PR gate: format, vet, build, race-enabled tests, and
# the project-native static-analysis suite. Every step must pass before a
# change ships; ROADMAP.md documents this as the tier-1 contract.
set -eu

cd "$(dirname "$0")"

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# The pipeline's concurrency contract (determinism across worker counts,
# prompt cancellation, no goroutine leaks) gets an extra stress pass:
# shuffled test order, run twice, under the race detector.
echo "==> go test -race -shuffle=on -count=2 ./internal/pipeline/..."
go test -race -shuffle=on -count=2 ./internal/pipeline/...

echo "==> edlint ./..."
go run ./cmd/edlint ./...

# Fuzz smoke: the ingestion invariant ("valid profile or error — never a
# panic, never a NaN smuggled into the pipeline") must survive a short
# native-fuzzing burst on every loader fuzz target.
echo "==> fuzz smoke (5s per target)"
go test -run='^$' -fuzz='^FuzzReadCSV$' -fuzztime=5s ./internal/importer
go test -run='^$' -fuzz='^FuzzProfileRead$' -fuzztime=5s ./internal/profile

echo "verify.sh: all gates passed"
