#!/bin/sh
# verify.sh — the pre-PR gate: format, vet, build, race-enabled tests, and
# the project-native static-analysis suite. Every step must pass before a
# change ships; ROADMAP.md documents this as the tier-1 contract.
set -eu

cd "$(dirname "$0")"

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# The concurrency and determinism contracts (stable results across worker
# counts, prompt cancellation, no goroutine leaks, order-independent
# aggregation and model selection) get an extra stress pass: shuffled test
# order, run twice, under the race detector, across the deterministic core
# of the modeling path.
shuffle_pkgs="./internal/pipeline/... ./internal/aggregate/... ./internal/epoch/... ./internal/modeling/... ./internal/pmnf/... ./internal/analysis/..."
echo "==> go test -race -shuffle=on -count=2 (pipeline + modeling core)"
go test -race -shuffle=on -count=2 $shuffle_pkgs

# edcheck: the propcheck invariant suites (TestProp*) rerun in their
# long-haul configuration — 5x the per-property iteration count under a
# 55-second budget. Any failure prints a one-line EDCHECK_SEED replay
# recipe; the budget keeps the gate cheap as suites accumulate.
echo "==> edcheck (long-haul propcheck invariants: 5x iterations, 55s budget)"
go run ./cmd/edcheck

# Coverage-regression gate: per-package statement coverage must not drop
# more than 2 points below the committed baseline. Refresh the baseline
# deliberately (see the regeneration hint below) when coverage moves for a
# good reason; silent erosion fails the gate.
echo "==> coverage regression (baseline: COVERAGE_baseline.txt, 2pt tolerance)"
cover_current=$(mktemp)
trap 'rm -f "$cover_current"' EXIT
go test -cover ./internal/... |
	awk '$1 == "ok" { for (i = 1; i <= NF; i++) if ($i == "coverage:") { p = $(i + 1); sub(/%/, "", p); print $2, p } }' |
	sort >"$cover_current"
awk '
	NR == FNR { base[$1] = $2; next }
	{ cur[$1] = $2 }
	END {
		bad = 0
		for (pkg in base) {
			if (!(pkg in cur)) {
				printf "coverage: %s has a baseline (%.1f%%) but was missing from this run\n", pkg, base[pkg]
				bad = 1
			} else if (cur[pkg] < base[pkg] - 2) {
				printf "coverage regression: %s %.1f%% is more than 2pt below the %.1f%% baseline\n", pkg, cur[pkg], base[pkg]
				bad = 1
			}
		}
		for (pkg in cur) if (!(pkg in base)) {
			printf "coverage: note: %s (%.1f%%) is new — add it to COVERAGE_baseline.txt\n", pkg, cur[pkg]
		}
		if (bad) {
			print "coverage gate failed; after a deliberate change, refresh with:"
			print "  go test -cover ./internal/... | awk <see verify.sh> | sort > COVERAGE_baseline.txt"
		}
		exit bad
	}' COVERAGE_baseline.txt "$cover_current"

# edlint-bench: the full-module lint (parse + type-check + 10-analyzer
# suite) is itself part of the gate, so it must stay cheap. The stage
# times the run and fails when it blows a generous 60-second budget;
# BENCH_lint.json tracks the finer-grained trajectory via
# BenchmarkLintRepo / BenchmarkAnalyzeOnly in internal/lint.
echo "==> edlint ./... (edlint-bench: 60s budget)"
lint_start=$(date +%s)
go run ./cmd/edlint ./...
lint_elapsed=$(($(date +%s) - lint_start))
echo "edlint-bench: full-repo lint took ${lint_elapsed}s"
if [ "$lint_elapsed" -gt 60 ]; then
	echo "edlint-bench: exceeded the 60s budget (${lint_elapsed}s) — profile with 'go test -bench BenchmarkLintRepo ./internal/lint'" >&2
	exit 1
fi

# Fuzz smoke: the ingestion invariant ("valid profile or error — never a
# panic, never a NaN smuggled into the pipeline") must survive a short
# native-fuzzing burst on every loader fuzz target.
echo "==> fuzz smoke (5s per target)"
go test -run='^$' -fuzz='^FuzzReadCSV$' -fuzztime=5s ./internal/importer
go test -run='^$' -fuzz='^FuzzProfileRead$' -fuzztime=5s ./internal/profile
go test -run='^$' -fuzz='^FuzzParseFileName$' -fuzztime=5s ./internal/profile

echo "verify.sh: all gates passed"
