// Package extradeep is a from-scratch Go reproduction of "Extra-Deep:
// Automated Empirical Performance Modeling for Distributed Deep Learning"
// (Ritter & Wolf, SC-W 2023): an automated empirical performance-modeling
// framework for distributed DNN training, together with the complete
// simulated measurement substrate (clusters, networks, DNN architectures,
// datasets, parallel strategies, profiler) needed to reproduce the paper's
// evaluation.
//
// The library lives under internal/: see internal/core for the pipeline
// facade, internal/modeling for PMNF model creation, internal/aggregate
// for the efficient-sampling aggregation, internal/analysis for the
// scalability/efficiency/cost layer, and internal/experiments for the
// regeneration of every table and figure of the paper. The cmd/ tree holds
// the command-line tools and examples/ runnable demonstrations.
//
// The benchmarks in bench_test.go regenerate each paper artifact; run them
// with:
//
//	go test -bench=. -benchmem
package extradeep
