package main

import (
	"strings"
	"testing"
)

// allAnalyzerNames is the full default-suite name list the CLI must
// surface, in lexical order, whenever a spec names an unknown analyzer.
var allAnalyzerNames = []string{
	"allocloop", "boxiface", "ctxflow", "deferhot", "divguard", "errcheck",
	"floateq", "libpanic", "logdomain", "maporder", "naninout", "prealloc",
	"sendguard", "wallclock",
}

// TestUnknownAnalyzerExitsTwo pins the CLI contract for a bad -analyzers
// spec: exit status 2 (a usage error, distinct from "findings were
// printed" = 1) and a stderr message that names the offender and lists
// every valid analyzer, so the fix is copy-pasteable from the error.
func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-analyzers", "allocloop,nosuch"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr.String())
	}
	msg := stderr.String()
	if !strings.Contains(msg, `unknown analyzer "nosuch"`) {
		t.Errorf("stderr does not name the unknown analyzer:\n%s", msg)
	}
	for _, name := range allAnalyzerNames {
		if !strings.Contains(msg, name) {
			t.Errorf("stderr does not list valid analyzer %q:\n%s", name, msg)
		}
	}
	if stdout.Len() != 0 {
		t.Errorf("usage error wrote to stdout: %q", stdout.String())
	}
}

// TestListNamesEveryAnalyzer keeps -list in sync with the default suite,
// including the perf family added in v4.
func TestListNamesEveryAnalyzer(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
	for _, name := range allAnalyzerNames {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list does not mention %q:\n%s", name, stdout.String())
		}
	}
}

// TestRunAliasConflictExitsTwo pins the -run/-analyzers alias rule.
func TestRunAliasConflictExitsTwo(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-analyzers", "floateq", "-run", "divguard"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "aliases") {
		t.Errorf("stderr does not explain the alias conflict:\n%s", stderr.String())
	}
}
