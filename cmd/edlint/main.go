// Command edlint runs Extra-Deep's project-native static-analysis suite
// (internal/lint) over the enclosing module and prints positioned
// diagnostics in the conventional file:line:col format.
//
// Usage:
//
//	edlint [-run analyzers] [-list] [patterns ...]
//
// Patterns follow the go tool's shape relative to the current directory:
// "./..." (the default) selects every package, "./dir/..." a subtree, and
// "./dir" a single package. The whole module is always loaded and
// type-checked — analysis is only *reported* for matching packages, so
// cross-package facts stay sound.
//
// Exit status: 0 when clean, 1 when findings were printed, 2 on usage or
// load errors. Findings are suppressed line-by-line with
//
//	//edlint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"extradeep/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	runSpec := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: edlint [-run analyzers] [-list] [patterns ...]")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := lint.Select(*runSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *list {
		for _, a := range lint.DefaultAnalyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	filter, err := packageFilter(mod, cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	diags := lint.Run(mod, analyzers, filter)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "edlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// packageFilter compiles go-style directory patterns into a package
// predicate over the loaded module.
func packageFilter(mod *lint.Module, cwd string, patterns []string) (func(*lint.Package) bool, error) {
	type rule struct {
		dir     string
		subtree bool
	}
	rules := make([]rule, 0, len(patterns))
	for _, p := range patterns {
		subtree := false
		if p == "all" || p == "..." {
			p = "./..."
		}
		if strings.HasSuffix(p, "/...") {
			subtree = true
			p = strings.TrimSuffix(p, "/...")
			if p == "." || p == "" {
				p = "."
			}
		}
		dir := p
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		dir = filepath.Clean(dir)
		if _, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("edlint: bad pattern %q: %w", p, err)
		}
		rules = append(rules, rule{dir: dir, subtree: subtree})
	}
	return func(pkg *lint.Package) bool {
		for _, r := range rules {
			if pkg.Dir == r.dir {
				return true
			}
			if r.subtree && strings.HasPrefix(pkg.Dir, r.dir+string(filepath.Separator)) {
				return true
			}
			if r.subtree && pkg.Dir == r.dir {
				return true
			}
		}
		return false
	}, nil
}
