// Command edlint runs Extra-Deep's project-native static-analysis suite
// (internal/lint) over the enclosing module and prints positioned
// diagnostics in the conventional file:line:col format.
//
// Usage:
//
//	edlint [-analyzers names] [-list] [-json] [-cachedir dir] [-nocache] [patterns ...]
//
// Patterns follow the go tool's shape relative to the current directory:
// "./..." (the default) selects every package, "./dir/..." a subtree, and
// "./dir" a single package. The whole module is always loaded and
// type-checked — analysis is only *reported* for matching packages, so
// cross-package facts stay sound.
//
// Repeated runs are incremental: type-checked standard-library export
// data and, for unchanged trees, the findings themselves are cached on
// disk under -cachedir (default: the user cache directory, e.g.
// ~/.cache/edlint). The cache is content-addressed — any edit, analyzer
// change or toolchain change invalidates it — and -nocache disables it
// entirely. Narrowed pattern runs never touch the findings cache. The
// findings layer also keys on the edlint executable (path, size, mtime),
// so a rebuilt binary re-analyzes instead of trusting stale findings;
// note that `go run` builds into a fresh temp path every invocation and
// therefore always misses that layer (the std-bundle layer still hits).
//
// With -json each finding is printed as one JSON object per line
// ({"file","line","col","analyzer","message"}), followed by one final
// summary object ({"summary":{...}}) with per-analyzer finding counts,
// load/analyze wall time and the cache outcomes; the exit status is
// unchanged by -json.
//
// Exit status: 0 when clean, 1 when findings were printed, 2 on usage or
// load errors — identical with and without the cache. Findings are
// suppressed with a mandatory reason at three scopes —
//
//	//edlint:ignore <analyzer> <reason>        (line and line below)
//	//edlint:ignore-block <analyzer> <reason>  (the syntax node below)
//	//edlint:ignore-file <analyzer> <reason>   (the whole file)
//
// — and malformed directives are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"extradeep/internal/lint"
)

// jsonDiagnostic is the -json wire shape of one finding, one object per
// line (JSON Lines), stable for editor and CI consumers.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonSummary is the final -json line: one object keyed "summary" so
// stream consumers can tell it from findings without counting lines.
type jsonSummary struct {
	Summary jsonSummaryBody `json:"summary"`
}

type jsonSummaryBody struct {
	Findings      int            `json:"findings"`
	ByAnalyzer    map[string]int `json:"by_analyzer,omitempty"`
	Packages      int            `json:"packages"`
	LoadMS        int64          `json:"load_ms"`
	AnalyzeMS     int64          `json:"analyze_ms"`
	StdCache      string         `json:"std_cache"`
	FindingsCache string         `json:"findings_cache"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flags are parsed from args into a
// private FlagSet and all output goes through the writers, so the CLI
// contract (exit codes, the unknown-analyzer message) is pinned by tests
// in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("edlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	analyzersSpec := fs.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	runSpec := fs.String("run", "", "alias for -analyzers (kept for compatibility)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	jsonOut := fs.Bool("json", false, "print findings as JSON Lines plus a final summary object")
	cacheDir := fs.String("cachedir", lint.DefaultCacheDir(), "incremental cache directory (empty disables caching)")
	noCache := fs.Bool("nocache", false, "disable the incremental cache for this run")
	fs.Usage = func() {
		sayln(stderr, "usage: edlint [-analyzers names] [-list] [-json] [-cachedir dir] [-nocache] [patterns ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	spec := *analyzersSpec
	if spec == "" {
		spec = *runSpec
	} else if *runSpec != "" && *runSpec != spec {
		sayln(stderr, "edlint: -run and -analyzers are aliases; set only one")
		return 2
	}
	analyzers, err := lint.Select(spec)
	if err != nil {
		sayln(stderr, err)
		return 2
	}
	if *list {
		for _, a := range lint.DefaultAnalyzers() {
			sayf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		sayln(stderr, err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		sayln(stderr, err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	filter, err := packageFilter(root, cwd, patterns)
	if err != nil {
		sayln(stderr, err)
		return 2
	}

	diags, stats, err := lint.Lint(root, lint.Options{
		Analyzers: analyzers,
		Filter:    filter,
		CacheDir:  *cacheDir,
		NoCache:   *noCache || *cacheDir == "",
	})
	if err != nil {
		sayln(stderr, err)
		return 2
	}

	enc := json.NewEncoder(stdout)
	byAnalyzer := make(map[string]int)
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		if *jsonOut {
			if err := enc.Encode(jsonDiagnostic{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				sayln(stderr, err)
				return 2
			}
			continue
		}
		sayf(stdout, "%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if *jsonOut {
		if err := enc.Encode(jsonSummary{Summary: jsonSummaryBody{
			Findings:      len(diags),
			ByAnalyzer:    byAnalyzer,
			Packages:      stats.Packages,
			LoadMS:        stats.LoadMS,
			AnalyzeMS:     stats.AnalyzeMS,
			StdCache:      stats.StdCache,
			FindingsCache: stats.FindingsCache,
		}}); err != nil {
			sayln(stderr, err)
			return 2
		}
	}
	if len(diags) > 0 {
		sayf(stderr, "edlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// sayf and sayln write best-effort console output: a console write error
// has no useful recovery in a CLI, so the results are deliberately
// dropped (and errcheck knows these helpers by shape).
func sayf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

func sayln(w io.Writer, args ...any) {
	_, _ = fmt.Fprintln(w, args...)
}

// packageFilter compiles go-style directory patterns into a package
// predicate over the module rooted at root. Selecting the whole module
// returns a nil filter, which keeps the findings cache eligible — a
// narrowed run reports a subset and must never be cached as the whole.
func packageFilter(root, cwd string, patterns []string) (func(*lint.Package) bool, error) {
	type rule struct {
		dir     string
		subtree bool
	}
	rules := make([]rule, 0, len(patterns))
	for _, p := range patterns {
		subtree := false
		if p == "all" || p == "..." {
			p = "./..."
		}
		if strings.HasSuffix(p, "/...") {
			subtree = true
			p = strings.TrimSuffix(p, "/...")
			if p == "." || p == "" {
				p = "."
			}
		}
		dir := p
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		dir = filepath.Clean(dir)
		if _, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("edlint: bad pattern %q: %w", p, err)
		}
		rules = append(rules, rule{dir: dir, subtree: subtree})
	}
	wholeModule := false
	for _, r := range rules {
		if r.subtree && r.dir == root {
			wholeModule = true
			break
		}
	}
	if wholeModule {
		return nil, nil
	}
	return func(pkg *lint.Package) bool {
		for _, r := range rules {
			if pkg.Dir == r.dir {
				return true
			}
			if r.subtree && strings.HasPrefix(pkg.Dir, r.dir+string(filepath.Separator)) {
				return true
			}
			if r.subtree && pkg.Dir == r.dir {
				return true
			}
		}
		return false
	}, nil
}
