// Command edlint runs Extra-Deep's project-native static-analysis suite
// (internal/lint) over the enclosing module and prints positioned
// diagnostics in the conventional file:line:col format.
//
// Usage:
//
//	edlint [-run analyzers] [-list] [-json] [patterns ...]
//
// Patterns follow the go tool's shape relative to the current directory:
// "./..." (the default) selects every package, "./dir/..." a subtree, and
// "./dir" a single package. The whole module is always loaded and
// type-checked — analysis is only *reported* for matching packages, so
// cross-package facts stay sound.
//
// With -json each finding is printed as one JSON object per line
// ({"file","line","col","analyzer","message"}), for editor and CI
// integration; the exit status is unchanged.
//
// Exit status: 0 when clean, 1 when findings were printed, 2 on usage or
// load errors. Findings are suppressed with a mandatory reason at three
// scopes —
//
//	//edlint:ignore <analyzer> <reason>        (line and line below)
//	//edlint:ignore-block <analyzer> <reason>  (the syntax node below)
//	//edlint:ignore-file <analyzer> <reason>   (the whole file)
//
// — and malformed directives are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"extradeep/internal/lint"
)

// jsonDiagnostic is the -json wire shape of one finding, one object per
// line (JSON Lines), stable for editor and CI consumers.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run())
}

func run() int {
	runSpec := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	jsonOut := flag.Bool("json", false, "print findings as JSON Lines instead of file:line:col text")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: edlint [-run analyzers] [-list] [-json] [patterns ...]")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := lint.Select(*runSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *list {
		for _, a := range lint.DefaultAnalyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	filter, err := packageFilter(mod, cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	diags := lint.Run(mod, analyzers, filter)
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		if *jsonOut {
			if err := enc.Encode(jsonDiagnostic{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			continue
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "edlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// packageFilter compiles go-style directory patterns into a package
// predicate over the loaded module.
func packageFilter(mod *lint.Module, cwd string, patterns []string) (func(*lint.Package) bool, error) {
	type rule struct {
		dir     string
		subtree bool
	}
	rules := make([]rule, 0, len(patterns))
	for _, p := range patterns {
		subtree := false
		if p == "all" || p == "..." {
			p = "./..."
		}
		if strings.HasSuffix(p, "/...") {
			subtree = true
			p = strings.TrimSuffix(p, "/...")
			if p == "." || p == "" {
				p = "."
			}
		}
		dir := p
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		dir = filepath.Clean(dir)
		if _, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("edlint: bad pattern %q: %w", p, err)
		}
		rules = append(rules, rule{dir: dir, subtree: subtree})
	}
	return func(pkg *lint.Package) bool {
		for _, r := range rules {
			if pkg.Dir == r.dir {
				return true
			}
			if r.subtree && strings.HasPrefix(pkg.Dir, r.dir+string(filepath.Separator)) {
				return true
			}
			if r.subtree && pkg.Dir == r.dir {
				return true
			}
		}
		return false
	}, nil
}
