// Command edcheck runs the repository's propcheck invariant suites in
// their long-haul configuration: every property's iteration count is
// multiplied via the EDCHECK_ITERS environment variable, and the whole
// run must finish inside a time budget (edlint-bench style), so the gate
// stays cheap even as suites accumulate.
//
// Usage:
//
//	edcheck [-iters n] [-budget seconds] [-run regexp] [packages ...]
//
// Packages default to ./internal/...; the run regexp defaults to
// '^TestProp', the naming convention of the invariant suites. Failing
// properties print propcheck's one-line EDCHECK_SEED replay recipe, so a
// red edcheck run is reproducible with a copy-paste.
//
// Exit status: 0 when every suite passed inside the budget, 1 on test
// failure or budget overrun, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"
)

func main() {
	os.Exit(run())
}

func run() int {
	iters := flag.Int("iters", 5, "EDCHECK_ITERS multiplier applied to every property's iteration count")
	budget := flag.Int("budget", 55, "time budget in seconds for the whole run")
	runRe := flag.String("run", "^TestProp", "go test -run expression selecting the invariant suites")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: edcheck [-iters n] [-budget seconds] [-run regexp] [packages ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *iters < 1 || *budget < 1 {
		flag.Usage()
		return 2
	}
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"./internal/..."}
	}

	args := append([]string{
		"test", "-count=1",
		"-run", *runRe,
		"-timeout", fmt.Sprintf("%ds", *budget),
	}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), fmt.Sprintf("EDCHECK_ITERS=%d", *iters))
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr

	start := time.Now()
	err := cmd.Run()
	elapsed := time.Since(start)
	fmt.Printf("edcheck: %d× iterations over %v took %.1fs (budget %ds)\n",
		*iters, pkgs, elapsed.Seconds(), *budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edcheck: invariant suites failed — replay any failure with its printed EDCHECK_SEED")
		return 1
	}
	if elapsed > time.Duration(*budget)*time.Second {
		fmt.Fprintf(os.Stderr, "edcheck: exceeded the %ds budget (%.1fs) — lower -iters or split slow suites\n",
			*budget, elapsed.Seconds())
		return 1
	}
	return 0
}
