// Command edprofile runs a simulated profiling campaign (step (2) of the
// analysis process) and writes one profile file per (configuration, rank,
// repetition) into a directory, using the paper's app.x{n}.mpi{k}.r{r}
// naming. The resulting directory is the input of `extradeep model`.
//
// Usage:
//
//	edprofile -benchmark cifar10 -system DEEP -strategy data \
//	          -ranks 2,4,6,8,10 -reps 5 -out profiles/
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"extradeep/internal/profile"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

func main() {
	benchmark := flag.String("benchmark", "cifar10", "benchmark name (cifar10, cifar100, imagenet, imdb, speechcommands)")
	systemName := flag.String("system", "DEEP", "evaluation system (DEEP or JURECA)")
	strategyName := flag.String("strategy", "data", "parallel strategy (data, tensor, pipeline)")
	ranksList := flag.String("ranks", "2,4,6,8,10", "comma-separated rank counts to profile")
	reps := flag.Int("reps", 5, "measurement repetitions per configuration")
	weak := flag.Bool("weak", true, "weak scaling (false = strong scaling with fixed global batch)")
	full := flag.Bool("full", false, "profile full epochs instead of the efficient sampling strategy")
	sampleRanks := flag.Int("sample-ranks", 4, "number of representative ranks to trace per run (0 = all)")
	seed := flag.Int64("seed", 1, "base random seed")
	out := flag.String("out", "profiles", "output directory")
	layerDetail := flag.Bool("layer-detail", false, "emit one kernel per layer instead of per layer type")
	chromeTrace := flag.String("chrome-trace", "", "additionally write rank 0 of the first configuration as a Chrome trace-event JSON (open in chrome://tracing or Perfetto)")
	flag.Parse()

	b, err := engine.ByName(*benchmark)
	if err != nil {
		fatal(err)
	}
	sys, err := hardware.ByName(*systemName)
	if err != nil {
		fatal(err)
	}
	strat, err := parallel.ByName(*strategyName)
	if err != nil {
		fatal(err)
	}
	ranks, err := parseRanks(*ranksList)
	if err != nil {
		fatal(err)
	}

	gran := engine.GranularityType
	if *layerDetail {
		gran = engine.GranularityLayer
	}
	store := &profile.Store{Dir: *out}
	written := 0
	for _, r := range ranks {
		cfg := engine.RunConfig{
			System:      sys,
			Strategy:    strat,
			Ranks:       r,
			WeakScaling: *weak,
			Granularity: gran,
			Seed:        *seed,
			SampleRanks: *sampleRanks,
		}
		for rep := 1; rep <= *reps; rep++ {
			profiles, err := engine.Profile(b, cfg, rep, !*full)
			if err != nil {
				fatal(fmt.Errorf("profiling %d ranks rep %d: %w", r, rep, err))
			}
			for _, p := range profiles {
				if err := store.Write(p); err != nil {
					fatal(err)
				}
				written++
			}
			if *chromeTrace != "" && rep == 1 && r == ranks[0] && len(profiles) > 0 {
				f, err := os.Create(*chromeTrace)
				if err != nil {
					fatal(err)
				}
				if err := profiles[0].Trace.WriteChromeTrace(f, profiles[0].Rank); err != nil {
					_ = f.Close() // best-effort: the write error is the root cause
					fatal(err)
				}
				if err := f.Close(); err != nil {
					fatal(err)
				}
				fmt.Printf("wrote Chrome trace to %s\n", *chromeTrace)
			}
		}
		fmt.Printf("profiled %s on %s: %d ranks, %d repetitions\n", *benchmark, *systemName, r, *reps)
	}
	fmt.Printf("wrote %d profiles to %s\n", written, *out)
}

func parseRanks(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid rank count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rank counts given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "edprofile:", err)
	os.Exit(1)
}
