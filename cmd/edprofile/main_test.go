package main

import "testing"

func TestParseRanks(t *testing.T) {
	got, err := parseRanks("2,4, 8,16")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("parsed %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parsed %v, want %v", got, want)
		}
	}
}

func TestParseRanksSkipsEmptyFields(t *testing.T) {
	got, err := parseRanks("2,,4,")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %v", got)
	}
}

func TestParseRanksRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "abc", "2,abc", "0", "-4", ","} {
		if _, err := parseRanks(in); err == nil {
			t.Errorf("parseRanks(%q) accepted", in)
		}
	}
}
