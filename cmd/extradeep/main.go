// Command extradeep is the Extra-Deep analysis front end: it reads a
// directory of profiles (steps (3)–(5) of the analysis process), runs the
// aggregation pipeline, creates kernel and application performance models,
// and reports scalability, efficiency, cost, and bottleneck analyses.
//
// Usage:
//
//	extradeep -profiles profiles/ -benchmark cifar10 [-weak] \
//	          [-predict 40] [-budget 10] [-max-time 600]
//
// The training-setup values (B, D_t, D_v, G, M of Section 2.3.1) are
// derived from the built-in benchmark named with -benchmark; for foreign
// profiles they can be given explicitly with -batch/-train-samples/
// -val-samples/-model-parallel.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"extradeep/internal/aggregate"
	"extradeep/internal/analysis"
	"extradeep/internal/core"
	"extradeep/internal/diagnose"
	"extradeep/internal/epoch"
	"extradeep/internal/importer"
	"extradeep/internal/measurement"
	"extradeep/internal/profile"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

func main() {
	profilesDir := flag.String("profiles", "profiles", "directory of profile files")
	benchmark := flag.String("benchmark", "", "built-in benchmark name to derive training-setup values from")
	strategyName := flag.String("strategy", "data", "parallel strategy the profiles were produced with")
	weak := flag.Bool("weak", true, "profiles come from weak-scaling runs")
	batch := flag.Float64("batch", 0, "per-worker batch size B (overrides -benchmark)")
	trainSamples := flag.Float64("train-samples", 0, "training-set size D_t (overrides -benchmark)")
	valSamples := flag.Float64("val-samples", 0, "validation-set size D_v (overrides -benchmark)")
	modelParallel := flag.Float64("model-parallel", 1, "degree of model parallelism M")
	predict := flag.Float64("predict", 0, "additionally predict the training time per epoch at this rank count")
	budget := flag.Float64("budget", 0, "budget in core-hours for the cost-effectiveness analysis (0 = unbounded)")
	maxTime := flag.Float64("max-time", 0, "maximum training time per epoch in seconds (0 = unbounded)")
	systemName := flag.String("system", "DEEP", "system the profiles were measured on (for ϱ of the cost model)")
	topKernels := flag.Int("top", 10, "number of kernels to list in the bottleneck ranking")
	format := flag.String("format", "json", "profile format: json (native) or csv (foreign-profiler interchange)")
	saveModels := flag.String("save-models", "", "write the fitted models to this JSON file")
	loadModels := flag.String("models", "", "skip profiling/modeling and load previously saved models from this file (prediction-only mode)")
	checkOnly := flag.Bool("check", false, "diagnose the profile set's measurement quality and exit")
	flag.Parse()

	if *loadModels != "" {
		predictOnly(*loadModels, *predict, *systemName, *budget, *maxTime)
		return
	}

	var profiles []*profile.Profile
	var err error
	switch *format {
	case "json":
		store := &profile.Store{Dir: *profilesDir}
		profiles, err = store.ReadAll()
	case "csv":
		profiles, err = importer.ImportDir(*profilesDir)
	default:
		err = fmt.Errorf("unknown profile format %q (have json, csv)", *format)
	}
	if err != nil {
		fatal(err)
	}
	if len(profiles) == 0 {
		fatal(fmt.Errorf("no profiles found in %s", *profilesDir))
	}
	fmt.Printf("loaded %d profiles from %s\n", len(profiles), *profilesDir)

	if *checkOnly {
		rep := diagnose.Check(profiles, diagnose.Options{})
		fmt.Print(rep.Render())
		if !rep.OK() {
			os.Exit(1)
		}
		return
	}

	strat, err := parallel.ByName(*strategyName)
	if err != nil {
		fatal(err)
	}
	setup, err := buildSetup(*benchmark, strat, *weak, *batch, *trainSamples, *valSamples, *modelParallel)
	if err != nil {
		fatal(err)
	}

	aggs, err := core.AggregateProfiles(profiles, aggregate.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("aggregated %d application configurations\n", len(aggs))

	models, err := core.BuildModels(aggs, setup, core.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	if *saveModels != "" {
		if err := core.SaveModels(*saveModels, models); err != nil {
			fatal(err)
		}
		fmt.Printf("saved %d kernel models and %d application models to %s\n",
			models.KernelCount(), len(models.App), *saveModels)
	}

	// --- application models --------------------------------------------
	fmt.Println("\napplication models (training time per epoch):")
	for _, path := range []string{epoch.AppPath, epoch.CompPath, epoch.CommPath, epoch.MemPath} {
		if m, ok := models.App[path]; ok {
			fmt.Printf("  %-20s T(p) = %s   (CV-SMAPE %.2f%%, R² %.4f)\n", path, m.Function, m.SMAPE, m.R2)
		}
	}

	// --- kernel bottleneck ranking --------------------------------------
	timeModels := models.Kernel[measurement.MetricTime]
	points := aggs[0].Point
	baseline := points.Clone()
	maxPoint := aggs[len(aggs)-1].Point.Clone()
	ranked := analysis.RankByGrowth(timeModels, baseline, maxPoint)
	fmt.Printf("\ntop %d kernels by growth trend (%s -> %s):\n", *topKernels, baseline.Key(), maxPoint.Key())
	for i, k := range ranked {
		if i >= *topKernels {
			break
		}
		fmt.Printf("  %2d. %-55s ×%-8.2f %s  %s\n", i+1, k.Callpath, k.GrowthFactor, k.Growth, k.Model.Function)
	}

	// Kernels ranked by achieved speedup: which functions benefit least
	// from scaling up (Section 3.1)?
	bySpeedup := analysis.RankBySpeedup(timeModels, baseline, maxPoint)
	if n := len(bySpeedup); n > 0 {
		fmt.Printf("\nkernels benefiting least from scaling up (Δ %s -> %s):\n", baseline.Key(), maxPoint.Key())
		shown := 0
		for i := n - 1; i >= 0 && shown < 5; i-- {
			k := bySpeedup[i]
			fmt.Printf("  %-55s Δ = %+.1f%%\n", k.Callpath, k.SpeedupPct)
			shown++
		}
	}

	appModel, ok := models.App[epoch.AppPath]
	if !ok {
		fatal(fmt.Errorf("no application runtime model"))
	}

	// --- optional prediction (Q1) ---------------------------------------
	if *predict > 0 {
		lo, hi := appModel.PredictInterval(0.95, *predict)
		fmt.Printf("\npredicted training time per epoch @ %.0f ranks: %.2f s (95%% CI [%.2f, %.2f])\n",
			*predict, appModel.Predict(*predict), lo, hi)
	}

	// --- speedup / efficiency / cost ------------------------------------
	sys, err := hardware.ByName(*systemName)
	if err != nil {
		fatal(err)
	}
	var xs []float64
	for _, agg := range aggs {
		xs = append(xs, agg.Point[0])
	}
	sort.Float64s(xs)
	effs, err := analysis.Efficiencies(appModel.Function, xs)
	if err != nil {
		fatal(err)
	}
	cm := analysis.CostModel{Runtime: appModel.Function, CoresPerRank: float64(sys.CoresPerRank)}
	fmt.Println("\nscalability and cost per measured configuration:")
	fmt.Printf("  %6s  %12s  %12s  %12s\n", "ranks", "T(p) [s]", "efficiency", "cost [core-h]")
	for i, x := range xs {
		fmt.Printf("  %6.0f  %12.2f  %12.3f  %12.3f\n", x, appModel.Predict(x), effs[i], cm.CoreHours(x))
	}

	// --- cost-effective configuration (Q5) ------------------------------
	best, err := analysis.MostCostEffective(appModel.Function, cm, xs, analysis.Constraint{MaxTime: *maxTime, Budget: *budget})
	if err != nil {
		fmt.Printf("\ncost-effectiveness: %v\n", err)
		return
	}
	fmt.Printf("\nmost cost-effective configuration: %.0f ranks (T = %.2f s, cost = %.3f core-h, efficiency %.3f)\n",
		best.Ranks, best.Time, best.Cost, best.Efficiency)
}

// buildSetup derives the epoch.SetupFunc either from a built-in benchmark
// or from explicit flag values.
func buildSetup(benchmark string, strat parallel.Strategy, weak bool, batch, trainSamples, valSamples, m float64) (epoch.SetupFunc, error) {
	if benchmark != "" {
		b, err := engine.ByName(benchmark)
		if err != nil {
			return nil, err
		}
		return engine.SetupFunc(b, strat, weak), nil
	}
	if batch <= 0 || trainSamples <= 0 {
		return nil, fmt.Errorf("either -benchmark or -batch and -train-samples must be given")
	}
	return func(point measurement.Point) epoch.Params {
		ranks := point[0]
		train := trainSamples
		if weak {
			train *= ranks
		}
		return epoch.Params{
			BatchSize:     batch,
			TrainSamples:  train,
			ValSamples:    valSamples,
			DataParallel:  ranks,
			ModelParallel: m,
		}
	}, nil
}

// predictOnly answers questions from previously saved models without any
// profiles — the cheap re-analysis path.
func predictOnly(modelsPath string, predict float64, systemName string, budget, maxTime float64) {
	models, err := core.LoadModels(modelsPath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d kernel models and %d application models from %s\n",
		models.KernelCount(), len(models.App), modelsPath)
	for _, path := range []string{epoch.AppPath, epoch.CompPath, epoch.CommPath, epoch.MemPath} {
		if m, ok := models.App[path]; ok {
			fmt.Printf("  %-20s T(p) = %s\n", path, m.Function)
		}
	}
	appModel, ok := models.App[epoch.AppPath]
	if !ok {
		fatal(fmt.Errorf("model file has no application runtime model"))
	}
	if predict > 0 {
		lo, hi := appModel.PredictInterval(0.95, predict)
		fmt.Printf("\npredicted training time per epoch @ %.0f ranks: %.2f s (95%% CI [%.2f, %.2f])\n",
			predict, appModel.Predict(predict), lo, hi)
	}
	if budget > 0 || maxTime > 0 {
		sys, err := hardware.ByName(systemName)
		if err != nil {
			fatal(err)
		}
		cm := analysis.CostModel{Runtime: appModel.Function, CoresPerRank: float64(sys.CoresPerRank)}
		var xs []float64
		for _, p := range appModel.Points {
			xs = append(xs, p[0])
		}
		best, err := analysis.MostCostEffective(appModel.Function, cm, xs, analysis.Constraint{MaxTime: maxTime, Budget: budget})
		if err != nil {
			fmt.Printf("\ncost-effectiveness: %v\n", err)
			return
		}
		fmt.Printf("\nmost cost-effective configuration: %.0f ranks (T = %.2f s, cost = %.3f core-h)\n",
			best.Ranks, best.Time, best.Cost)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "extradeep:", err)
	os.Exit(1)
}
