// Command extradeep is the Extra-Deep analysis front end: it reads a
// directory of profiles (steps (3)–(5) of the analysis process), runs the
// aggregation pipeline, creates kernel and application performance models,
// and reports scalability, efficiency, cost, and bottleneck analyses.
//
// Usage:
//
//	extradeep -profiles profiles/ -benchmark cifar10 [-weak] [-strict] \
//	          [-predict 40] [-budget 10] [-max-time 600]
//
// The training-setup values (B, D_t, D_v, G, M of Section 2.3.1) are
// derived from the built-in benchmark named with -benchmark; for foreign
// profiles they can be given explicitly with -batch/-train-samples/
// -val-samples/-model-parallel.
//
// Profile loading is fault-tolerant by default (lenient policy): files
// that fail to read, decode or validate are quarantined with a visible
// summary and the analysis proceeds on the surviving set, as long as the
// degradation gate still sees enough distinct configurations for
// modeling. -strict restores the historical all-or-nothing behavior and
// aborts on the first unreadable file.
//
// The run itself is resilient: stages execute under optional deadline
// budgets (-stage-timeout) with seeded retry/backoff of transient
// failures (-retries), per-kernel fit panics are quarantined so the run
// completes partially instead of dying, and -checkpoint-dir persists
// campaign state incrementally so an interrupted run rerun with -resume
// reuses every completed fit byte-identically. The EDFAULT_SCHEDULE and
// EDFAULT_SEED environment knobs inject deterministic faults at stage
// and fit-task boundaries for testing (see internal/resilience).
//
// Exit codes:
//
//	0 — success, including success-with-warnings (files were quarantined
//	    but the surviving set was modelable)
//	1 — any other failure (modeling, I/O, failed -check diagnosis)
//	2 — flag or usage errors (unknown format, benchmark, strategy, …)
//	3 — no usable profile data: the degradation gate refused the
//	    surviving set in lenient mode, or a file failed in -strict mode
//	4 — partial success: the analysis completed and the report was
//	    printed, but one or more per-kernel fits were quarantined
//	    (panicked or failed with the degraded class); the report's
//	    quarantine section names every skipped kernel
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"extradeep/internal/aggregate"
	"extradeep/internal/analysis"
	"extradeep/internal/core"
	"extradeep/internal/diagnose"
	"extradeep/internal/epoch"
	"extradeep/internal/ingest"
	"extradeep/internal/measurement"
	"extradeep/internal/modeling"
	"extradeep/internal/pipeline"
	"extradeep/internal/resilience"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

// Process exit codes; see the command doc comment.
const (
	exitOK      = 0
	exitFailure = 1
	exitUsage   = 2
	exitNoData  = 3
	exitPartial = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// say, sayf and sayln print best-effort to the chosen writer. The writers
// are os.Stdout/os.Stderr in production and buffers in tests; a failed
// diagnostic write has no sensible recovery in a CLI, so the error is
// deliberately discarded.
func say(w io.Writer, args ...any) {
	_, _ = fmt.Fprint(w, args...)
}

func sayf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

func sayln(w io.Writer, args ...any) {
	_, _ = fmt.Fprintln(w, args...)
}

// run executes the command and returns its process exit code. It is
// separated from main so tests can drive the full command line, including
// exit codes, without spawning a process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("extradeep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	profilesDir := fs.String("profiles", "profiles", "directory of profile files")
	benchmark := fs.String("benchmark", "", "built-in benchmark name to derive training-setup values from")
	strategyName := fs.String("strategy", "data", "parallel strategy the profiles were produced with")
	weak := fs.Bool("weak", true, "profiles come from weak-scaling runs")
	batch := fs.Float64("batch", 0, "per-worker batch size B (overrides -benchmark)")
	trainSamples := fs.Float64("train-samples", 0, "training-set size D_t (overrides -benchmark)")
	valSamples := fs.Float64("val-samples", 0, "validation-set size D_v (overrides -benchmark)")
	modelParallel := fs.Float64("model-parallel", 1, "degree of model parallelism M")
	predict := fs.Float64("predict", 0, "additionally predict the training time per epoch at this rank count")
	budget := fs.Float64("budget", 0, "budget in core-hours for the cost-effectiveness analysis (0 = unbounded)")
	maxTime := fs.Float64("max-time", 0, "maximum training time per epoch in seconds (0 = unbounded)")
	systemName := fs.String("system", "DEEP", "system the profiles were measured on (for ϱ of the cost model)")
	topKernels := fs.Int("top", 10, "number of kernels to list in the bottleneck ranking")
	format := fs.String("format", "json", "profile format: json (native) or csv (foreign-profiler interchange)")
	saveModels := fs.String("save-models", "", "write the fitted models to this JSON file")
	loadModels := fs.String("models", "", "skip profiling/modeling and load previously saved models from this file (prediction-only mode)")
	checkOnly := fs.Bool("check", false, "diagnose the profile set's measurement quality and exit")
	strict := fs.Bool("strict", false, "abort on the first unreadable profile instead of quarantining it")
	jobs := fs.Int("j", 0, "fit worker parallelism: 0 = all cores, 1 = sequential (output is identical either way)")
	timings := fs.Bool("timings", false, "print per-stage timings and counters to stderr")
	checkpointDir := fs.String("checkpoint-dir", "", "persist campaign checkpoint state incrementally into this directory")
	resume := fs.Bool("resume", false, "reuse completed fit results from -checkpoint-dir (content-keyed, so changed inputs refit)")
	stageTimeout := fs.Duration("stage-timeout", 0, "deadline budget per pipeline stage attempt (0 = none)")
	retries := fs.Int("retries", 0, "attempts per stage for transient failures (0 = default of 3)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	fail := func(err error) int {
		sayln(stderr, "extradeep:", err)
		return exitFailure
	}
	usage := func(err error) int {
		sayln(stderr, "extradeep:", err)
		return exitUsage
	}

	if *loadModels != "" {
		return predictOnly(*loadModels, *predict, *systemName, *budget, *maxTime, stdout, stderr)
	}

	if *format != "json" && *format != "csv" {
		return usage(fmt.Errorf("unknown profile format %q (have json, csv)", *format))
	}
	if *resume && *checkpointDir == "" {
		return usage(fmt.Errorf("-resume requires -checkpoint-dir"))
	}

	// Fault injection (EDFAULT_SCHEDULE / EDFAULT_SEED): a parsed
	// schedule yields an injector whose faults fire at stage and fit-task
	// boundaries; with neither knob set the injector is nil and the hooks
	// are free. Seed-derived schedules draw over the stage points plus the
	// first 32 fit tasks.
	schedule, err := resilience.ScheduleFromEnv(pipeline.InjectionPoints(32))
	if err != nil {
		return usage(err)
	}
	var injector *resilience.Injector
	if len(schedule) > 0 {
		injector = resilience.NewInjector(nil, schedule...)
		sayf(stderr, "extradeep: fault injection active: %s\n", resilience.FormatSchedule(schedule))
	}

	var store *resilience.Store
	if *checkpointDir != "" {
		if err := os.MkdirAll(*checkpointDir, 0o755); err != nil {
			return fail(err)
		}
		store = &resilience.Store{Dir: *checkpointDir}
	}

	// The staged analysis pipeline: Ingest → Aggregate → Epoch → Fit →
	// Analyze → Report. -j bounds the fit worker pool; -timings exposes
	// the per-stage observer on stderr.
	var obs pipeline.Observer
	if *timings {
		obs = &pipeline.LogObserver{W: stderr}
	}
	pl := pipeline.New(pipeline.Config{
		Workers:      *jobs,
		Aggregation:  aggregate.DefaultOptions(),
		Modeling:     modeling.DefaultOptions(),
		Observer:     obs,
		Injector:     injector,
		Retry:        resilience.RetryPolicy{MaxAttempts: *retries},
		StageTimeout: *stageTimeout,
		Checkpoint:   store,
		Resume:       *resume,
	})
	// Cancel-kind faults target the armed cancel exactly like a ^C at
	// their scheduled point; without injection this is a plain context.
	ctx, cancelRun := context.WithCancelCause(context.Background())
	defer cancelRun(nil)
	injector.Arm(cancelRun)

	opts := ingest.Options{Policy: ingest.Lenient}
	if *strict {
		opts.Policy = ingest.Strict
	}
	report, err := pl.Ingest(ctx, *profilesDir, *format, opts)
	if err != nil {
		sayln(stderr, "extradeep:", err)
		return exitNoData
	}
	sayf(stdout, "loaded %d profiles from %s\n", len(report.Profiles), *profilesDir)
	if s := report.Summary(); s != "" {
		say(stdout, s)
	}
	if err := report.Gate(opts); err != nil {
		sayln(stderr, "extradeep:", err)
		return exitNoData
	}
	for _, w := range report.Warnings {
		sayf(stdout, "warning: %s\n", w)
	}
	profiles := report.Profiles

	if *checkOnly {
		rep := diagnose.Check(profiles, diagnose.Options{})
		say(stdout, rep.Render())
		if !rep.OK() {
			return exitFailure
		}
		return exitOK
	}

	strat, err := parallel.ByName(*strategyName)
	if err != nil {
		return usage(err)
	}
	setup, err := buildSetup(*benchmark, strat, *weak, *batch, *trainSamples, *valSamples, *modelParallel)
	if err != nil {
		return usage(err)
	}

	aggs, err := pl.Aggregate(ctx, profiles)
	if err != nil {
		return fail(err)
	}
	sayf(stdout, "aggregated %d application configurations\n", len(aggs))

	models, err := pl.BuildModels(ctx, aggs, setup)
	if err != nil {
		return fail(err)
	}
	if *saveModels != "" {
		if err := core.SaveModels(*saveModels, models); err != nil {
			return fail(err)
		}
		sayf(stdout, "saved %d kernel models and %d application models to %s\n",
			models.KernelCount(), len(models.App), *saveModels)
	}

	// --- analysis & report (Sections 3.1–3.3, Q1–Q5) --------------------
	sys, err := hardware.ByName(*systemName)
	if err != nil {
		return usage(err)
	}
	ares, err := pl.Analyze(ctx, models, aggs, pipeline.AnalyzeOptions{
		Predict:      *predict,
		Budget:       *budget,
		MaxTime:      *maxTime,
		CoresPerRank: float64(sys.CoresPerRank),
		TopKernels:   *topKernels,
	})
	if err != nil {
		return fail(err)
	}
	text, err := pl.RenderContext(ctx, ares)
	if err != nil {
		return fail(err)
	}
	say(stdout, text)
	if models.Degraded() {
		quarantined := 0
		for _, f := range models.Skipped {
			if f.Class != pipeline.FailureUnmodelable {
				quarantined++
			}
		}
		sayf(stderr, "extradeep: %d kernel fits quarantined; the report is partial\n", quarantined)
		return exitPartial
	}
	return exitOK
}

// buildSetup derives the epoch.SetupFunc either from a built-in benchmark
// or from explicit flag values.
func buildSetup(benchmark string, strat parallel.Strategy, weak bool, batch, trainSamples, valSamples, m float64) (epoch.SetupFunc, error) {
	if benchmark != "" {
		b, err := engine.ByName(benchmark)
		if err != nil {
			return nil, err
		}
		return engine.SetupFunc(b, strat, weak), nil
	}
	if batch <= 0 || trainSamples <= 0 {
		return nil, fmt.Errorf("either -benchmark or -batch and -train-samples must be given")
	}
	return func(point measurement.Point) epoch.Params {
		ranks := point[0]
		train := trainSamples
		if weak {
			train *= ranks
		}
		return epoch.Params{
			BatchSize:     batch,
			TrainSamples:  train,
			ValSamples:    valSamples,
			DataParallel:  ranks,
			ModelParallel: m,
		}
	}, nil
}

// predictOnly answers questions from previously saved models without any
// profiles — the cheap re-analysis path.
func predictOnly(modelsPath string, predict float64, systemName string, budget, maxTime float64, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		sayln(stderr, "extradeep:", err)
		return exitFailure
	}
	models, err := core.LoadModels(modelsPath)
	if err != nil {
		return fail(err)
	}
	sayf(stdout, "loaded %d kernel models and %d application models from %s\n",
		models.KernelCount(), len(models.App), modelsPath)
	for _, path := range []string{epoch.AppPath, epoch.CompPath, epoch.CommPath, epoch.MemPath} {
		if m, ok := models.App[path]; ok {
			sayf(stdout, "  %-20s T(p) = %s\n", path, m.Function)
		}
	}
	appModel, ok := models.App[epoch.AppPath]
	if !ok {
		return fail(fmt.Errorf("model file has no application runtime model"))
	}
	if predict > 0 {
		lo, hi := appModel.PredictInterval(0.95, predict)
		sayf(stdout, "\npredicted training time per epoch @ %.0f ranks: %.2f s (95%% CI [%.2f, %.2f])\n",
			predict, appModel.Predict(predict), lo, hi)
	}
	if budget > 0 || maxTime > 0 {
		sys, err := hardware.ByName(systemName)
		if err != nil {
			return fail(err)
		}
		cm := analysis.CostModel{Runtime: appModel.Function, CoresPerRank: float64(sys.CoresPerRank)}
		var xs []float64
		for _, p := range appModel.Points {
			xs = append(xs, p[0])
		}
		best, err := analysis.MostCostEffective(appModel.Function, cm, xs, analysis.Constraint{MaxTime: maxTime, Budget: budget})
		if err != nil {
			sayf(stdout, "\ncost-effectiveness: %v\n", err)
			return exitOK
		}
		sayf(stdout, "\nmost cost-effective configuration: %.0f ranks (T = %.2f s, cost = %.3f core-h)\n",
			best.Ranks, best.Time, best.Cost)
	}
	return exitOK
}
