package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"extradeep/internal/faults"
	"extradeep/internal/profile"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

// writeCampaign simulates a 5-configuration × 2-repetition campaign (one
// sampled rank per run: 10 profile files) into a fresh directory.
func writeCampaign(t *testing.T) string {
	t.Helper()
	b, err := engine.ByName("imdb")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store := &profile.Store{Dir: dir}
	for _, ranks := range []int{2, 4, 6, 8, 10} {
		cfg := engine.RunConfig{
			System: hardware.DEEP(), Strategy: parallel.DataParallel{},
			Ranks: ranks, WeakScaling: true, Seed: 7, SampleRanks: 1,
		}
		for rep := 1; rep <= 2; rep++ {
			ps, err := engine.Profile(b, cfg, rep, true)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range ps {
				if err := store.Write(p); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return dir
}

// TestLenientAnalysisSurvivesCorruptedFiles is the acceptance scenario:
// with 2 of 10 files corrupted, lenient mode completes the full analysis
// from the 8 healthy profiles, names both bad files, and exits 0.
func TestLenientAnalysisSurvivesCorruptedFiles(t *testing.T) {
	dir := writeCampaign(t)
	bad1, err := faults.CorruptFile(filepath.Join(dir, "imdb.x2.mpi0.r1.json"), faults.Truncate)
	if err != nil {
		t.Fatal(err)
	}
	bad2, err := faults.CorruptFile(filepath.Join(dir, "imdb.x6.mpi0.r2.json"), faults.NaNMetric)
	if err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{"-profiles", dir, "-benchmark", "imdb"}, &stdout, &stderr)
	if code != exitOK {
		t.Fatalf("exit %d, want %d; stderr:\n%s", code, exitOK, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"loaded 8 profiles",
		"quarantined 2 of 10",
		bad1,
		bad2,
		"aggregated 5 application configurations",
		"application models",
		"most cost-effective configuration",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestStrictModeExitsNonZeroNamingFirstFailure(t *testing.T) {
	dir := writeCampaign(t)
	bad, err := faults.CorruptFile(filepath.Join(dir, "imdb.x2.mpi0.r1.json"), faults.Truncate)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-profiles", dir, "-benchmark", "imdb", "-strict"}, &stdout, &stderr)
	if code != exitNoData {
		t.Fatalf("exit %d, want %d", code, exitNoData)
	}
	if !strings.Contains(stderr.String(), bad) {
		t.Errorf("strict failure does not name %s:\n%s", bad, stderr.String())
	}
}

func TestGateRefusalExitsNoData(t *testing.T) {
	dir := writeCampaign(t)
	// Destroy both repetitions of one configuration: 4 survive, below the
	// paper's minimum of 5.
	for _, name := range []string{"imdb.x4.mpi0.r1.json", "imdb.x4.mpi0.r2.json"} {
		if _, err := faults.CorruptFile(filepath.Join(dir, name), faults.Garbage); err != nil {
			t.Fatal(err)
		}
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-profiles", dir, "-benchmark", "imdb"}, &stdout, &stderr)
	if code != exitNoData {
		t.Fatalf("exit %d, want %d; stderr:\n%s", code, exitNoData, stderr.String())
	}
	if !strings.Contains(stderr.String(), "4 usable configuration") {
		t.Errorf("stderr lacks gate explanation:\n%s", stderr.String())
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	cases := [][]string{
		{"-format", "xml"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != exitUsage {
			t.Errorf("run(%v) = %d, want %d", args, code, exitUsage)
		}
	}
}

func TestMissingSetupIsUsageError(t *testing.T) {
	dir := writeCampaign(t)
	var stdout, stderr bytes.Buffer
	// No -benchmark and no -batch/-train-samples: a usage error, after
	// profiles loaded fine.
	if code := run([]string{"-profiles", dir}, &stdout, &stderr); code != exitUsage {
		t.Errorf("exit %d, want %d; stderr:\n%s", code, exitUsage, stderr.String())
	}
}

func TestCheckModeRunsOnSurvivingProfiles(t *testing.T) {
	dir := writeCampaign(t)
	if _, err := faults.CorruptFile(filepath.Join(dir, "imdb.x2.mpi0.r1.json"), faults.Empty); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-profiles", dir, "-check"}, &stdout, &stderr)
	if code != exitOK {
		t.Fatalf("exit %d, want %d; stderr:\n%s", code, exitOK, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "quarantined 1 of 10") || !strings.Contains(out, "modeling can proceed") {
		t.Errorf("check output unexpected:\n%s", out)
	}
}

// TestParallelFitOutputIsByteIdentical runs the quickstart-style analysis
// sequentially and with a parallel fit pool and requires byte-identical
// stdout — the pipeline's determinism contract at the CLI surface.
func TestParallelFitOutputIsByteIdentical(t *testing.T) {
	dir := writeCampaign(t)
	args := func(jobs string) []string {
		return []string{"-profiles", dir, "-benchmark", "imdb", "-j", jobs,
			"-predict", "40", "-budget", "10", "-max-time", "600"}
	}
	var seq, par bytes.Buffer
	var stderr bytes.Buffer
	if code := run(args("1"), &seq, &stderr); code != exitOK {
		t.Fatalf("-j 1 exit %d; stderr:\n%s", code, stderr.String())
	}
	if code := run(args("8"), &par, &stderr); code != exitOK {
		t.Fatalf("-j 8 exit %d; stderr:\n%s", code, stderr.String())
	}
	if seq.String() != par.String() {
		t.Errorf("-j 1 and -j 8 reports differ:\n--- j1 ---\n%s\n--- j8 ---\n%s",
			seq.String(), par.String())
	}
}

// TestQuarantinedFitExitsPartial: an injected per-kernel fit panic (via
// the EDFAULT_SCHEDULE knob) still produces the full report — with a
// quarantine section naming the skipped kernel — and exits with the
// partial-success code.
func TestQuarantinedFitExitsPartial(t *testing.T) {
	dir := writeCampaign(t)
	t.Setenv("EDFAULT_SCHEDULE", "fit:task:0@0=panic;fit:task:2@0=degraded")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-profiles", dir, "-benchmark", "imdb"}, &stdout, &stderr)
	if code != exitPartial {
		t.Fatalf("exit %d, want %d; stderr:\n%s", code, exitPartial, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"most cost-effective configuration", // the analysis still completed
		"quarantined kernels (run completed partially):",
		"class=panic", "class=degraded",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
	if !strings.Contains(stderr.String(), "quarantined") {
		t.Errorf("stderr lacks quarantine notice:\n%s", stderr.String())
	}
}

// TestKillMidFitResumeByteIdentical is the acceptance pin at the CLI
// surface: a fault schedule kills the run mid-Fit with -checkpoint-dir
// set; the rerun with -resume completes from the stored records and its
// stdout is byte-identical to an uninterrupted run.
func TestKillMidFitResumeByteIdentical(t *testing.T) {
	dir := writeCampaign(t)
	args := func(extra ...string) []string {
		return append([]string{"-profiles", dir, "-benchmark", "imdb", "-predict", "40"}, extra...)
	}

	var cold bytes.Buffer
	var stderr bytes.Buffer
	if code := run(args(), &cold, &stderr); code != exitOK {
		t.Fatalf("cold run exit %d; stderr:\n%s", code, stderr.String())
	}

	ckpt := filepath.Join(t.TempDir(), "ckpt")
	t.Setenv("EDFAULT_SCHEDULE", "fit:task:4@0=error")
	var killed bytes.Buffer
	stderr.Reset()
	// Sequential fit (-j 1) so tasks 0–3 checkpoint before the kill.
	if code := run(args("-checkpoint-dir", ckpt, "-j", "1"), &killed, &stderr); code != exitFailure {
		t.Fatalf("killed run exit %d, want %d; stderr:\n%s", code, exitFailure, stderr.String())
	}

	t.Setenv("EDFAULT_SCHEDULE", "")
	var resumed bytes.Buffer
	stderr.Reset()
	if code := run(args("-checkpoint-dir", ckpt, "-resume"), &resumed, &stderr); code != exitOK {
		t.Fatalf("resume exit %d; stderr:\n%s", code, stderr.String())
	}
	if !bytes.Equal(resumed.Bytes(), cold.Bytes()) {
		t.Errorf("resumed stdout differs from cold run:\n--- cold ---\n%s\n--- resumed ---\n%s",
			cold.String(), resumed.String())
	}
}

// TestResumeRequiresCheckpointDir: -resume without -checkpoint-dir is a
// usage error, and a malformed EDFAULT_SCHEDULE is too.
func TestResumeRequiresCheckpointDir(t *testing.T) {
	dir := writeCampaign(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-profiles", dir, "-benchmark", "imdb", "-resume"}, &stdout, &stderr); code != exitUsage {
		t.Errorf("-resume without dir: exit %d, want %d", code, exitUsage)
	}
	t.Setenv("EDFAULT_SCHEDULE", "not-a-schedule")
	if code := run([]string{"-profiles", dir, "-benchmark", "imdb"}, &stdout, &stderr); code != exitUsage {
		t.Errorf("bad schedule: exit %d, want %d", code, exitUsage)
	}
}

// TestTimingsFlagEmitsStageLines checks the observer surface: -timings
// prints one line per pipeline stage to stderr, none to stdout.
func TestTimingsFlagEmitsStageLines(t *testing.T) {
	dir := writeCampaign(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-profiles", dir, "-benchmark", "imdb", "-timings"}, &stdout, &stderr)
	if code != exitOK {
		t.Fatalf("exit %d; stderr:\n%s", code, stderr.String())
	}
	for _, stage := range []string{"ingest", "aggregate", "epoch", "fit", "analyze", "report"} {
		if !strings.Contains(stderr.String(), "stage "+stage+":") {
			t.Errorf("stderr lacks stage %q line:\n%s", stage, stderr.String())
		}
	}
	if strings.Contains(stdout.String(), "stage ") {
		t.Error("stage timing lines leaked to stdout")
	}
}
