// Command edinstrument is Extra-Deep's automated instrumentation tool
// (step (1) of the analysis process): it injects NVTX annotations into
// Python training scripts so that user functions, training steps and
// epochs appear in profiles.
//
// Usage:
//
//	edinstrument [-o output.py | -w] train.py
//
// With -w the file is rewritten in place; with -o the result goes to the
// given path; otherwise it is printed to stdout. A summary of the injected
// annotations is printed to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"extradeep/internal/instrument"
)

func main() {
	output := flag.String("o", "", "write the instrumented source to this file")
	inPlace := flag.Bool("w", false, "rewrite the input file in place")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: edinstrument [-o output.py | -w] <file.py>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)

	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	out, report, err := instrument.Instrument(path, string(src))
	if err != nil {
		fatal(err)
	}

	switch {
	case *inPlace:
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			fatal(err)
		}
	case *output != "":
		if err := os.WriteFile(*output, []byte(out), 0o644); err != nil {
			fatal(err)
		}
	default:
		fmt.Print(out)
	}

	fmt.Fprintf(os.Stderr, "instrumented %s: %d functions (%s), %d epoch loop(s), %d step loop(s), import added: %v\n",
		path, len(report.FunctionsAnnotated), strings.Join(report.FunctionsAnnotated, ", "),
		report.EpochLoops, report.StepLoops, report.ImportAdded)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "edinstrument:", err)
	os.Exit(1)
}
