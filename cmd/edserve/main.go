// Command edserve runs Extra-Deep as a long-lived modeling service: an
// HTTP server that accepts profile uploads, maintains fitted performance
// models per application, and answers prediction, speedup, efficiency
// and cost queries (Eqs. 11–14) from a model cache — so one measurement
// campaign can feed many questions without re-running batch analyses.
//
// Usage:
//
//	edserve -listen 127.0.0.1:8080 -spool /var/lib/edserve \
//	        -benchmark cifar10 [-checkpoint-dir /var/lib/edserve-ckpt -resume]
//
// Endpoints (all JSON unless noted):
//
//	GET  /v1/health                     liveness + application count
//	GET  /v1/apps                       application listing with fit state
//	GET  /v1/apps/{app}/status          one application's fit state
//	POST /v1/apps/{app}/profiles        upload a batch of profile files
//	GET  /v1/apps/{app}/models          fitted models (canonical model-file JSON)
//	GET  /v1/apps/{app}/report          rendered text report (text/plain)
//	GET  /v1/apps/{app}/predict?x=N     training time per epoch at N ranks
//	GET  /v1/apps/{app}/speedup?x=N     Eq. 11 achieved vs Eq. 13 theoretical
//	GET  /v1/apps/{app}/efficiency?x=N  Eq. 13 parallel efficiency
//	GET  /v1/apps/{app}/cost?x=N        Eq. 14 training cost in core-hours
//
// Upload batches are atomic: every file is validated with the same
// read/decode/validate classification the batch ingester uses, and one
// bad file refuses the whole batch (422 with per-file stage detail)
// leaving the store unchanged. Bursts of uploads to one application
// coalesce into a single re-fit campaign (-coalesce widens the window);
// with -checkpoint-dir and -resume, re-fits reuse every fit task whose
// inputs did not change.
//
// Error responses carry an exit_equivalent field mapping each failure
// onto the batch CLI's exit-code taxonomy (0 success, 1 internal,
// 2 request error, 3 no usable data); degraded (partial) fits are
// reported in-band via "degraded": true, the exit-4 analog.
//
// On SIGINT/SIGTERM the server stops accepting connections, drains
// in-flight fit campaigns (bounded by -drain-timeout), and exits 0; an
// interrupted campaign's checkpoints are resumable, so a restart with
// -resume converges to identical models without refitting finished work.
//
// Exit codes: 0 — clean shutdown; 1 — runtime failure (bind, spool scan);
// 2 — flag or usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"extradeep/internal/epoch"
	"extradeep/internal/measurement"
	"extradeep/internal/pipeline"
	"extradeep/internal/serve"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

const (
	exitOK      = 0
	exitFailure = 1
	exitUsage   = 2
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// say and sayf print best-effort to the chosen writer; a failed
// diagnostic write has no recovery path in a server binary.
func sayf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

// run executes the command until ctx is cancelled (the signal handler)
// and returns the process exit code. Tests drive it with their own
// context and writers, including the full boot → serve → drain cycle.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("edserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:8080", "address to serve HTTP on")
	spoolDir := fs.String("spool", "spool", "directory profile uploads are spooled under (the server's durable state)")
	checkpointDir := fs.String("checkpoint-dir", "", "persist per-application fit checkpoints under this directory")
	resume := fs.Bool("resume", false, "reuse checkpointed fit tasks across campaigns and restarts (content-keyed)")
	benchmark := fs.String("benchmark", "", "built-in benchmark name to derive training-setup values from")
	strategyName := fs.String("strategy", "data", "parallel strategy the profiles were produced with")
	weak := fs.Bool("weak", true, "profiles come from weak-scaling runs")
	batch := fs.Float64("batch", 0, "per-worker batch size B (overrides -benchmark)")
	trainSamples := fs.Float64("train-samples", 0, "training-set size D_t (overrides -benchmark)")
	valSamples := fs.Float64("val-samples", 0, "validation-set size D_v (overrides -benchmark)")
	modelParallel := fs.Float64("model-parallel", 1, "degree of model parallelism M")
	systemName := fs.String("system", "DEEP", "system the profiles were measured on (for ϱ of the cost model)")
	topKernels := fs.Int("top", 10, "number of kernels to list in report bottleneck rankings")
	jobs := fs.Int("j", 0, "fit worker parallelism per campaign: 0 = all cores")
	maxCampaigns := fs.Int("max-campaigns", 0, "concurrent fit campaigns across applications (0 = default of 2)")
	coalesce := fs.Duration("coalesce", 0, "window to coalesce an upload burst into one re-fit campaign")
	requestTimeout := fs.Duration("request-timeout", 0, "per-request deadline budget (0 = default of 30s, negative disables)")
	stageTimeout := fs.Duration("stage-timeout", 0, "deadline budget per campaign stage attempt (0 = none)")
	retries := fs.Int("retries", 0, "attempts per campaign stage for transient failures (0 = default of 3)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight fit campaigns")
	timings := fs.Bool("timings", false, "log per-stage campaign timings and counters to stderr")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	usage := func(err error) int {
		sayf(stderr, "edserve: %v\n", err)
		return exitUsage
	}
	fail := func(err error) int {
		sayf(stderr, "edserve: %v\n", err)
		return exitFailure
	}

	if *resume && *checkpointDir == "" {
		return usage(errors.New("-resume requires -checkpoint-dir"))
	}
	strat, err := parallel.ByName(*strategyName)
	if err != nil {
		return usage(err)
	}
	setup, err := buildSetup(*benchmark, strat, *weak, *batch, *trainSamples, *valSamples, *modelParallel)
	if err != nil {
		return usage(err)
	}
	sys, err := hardware.ByName(*systemName)
	if err != nil {
		return usage(err)
	}

	var obs pipeline.Observer
	if *timings {
		obs = &pipeline.LogObserver{W: stderr}
	}
	srv, err := serve.New(serve.Config{
		SpoolDir:       *spoolDir,
		CheckpointDir:  *checkpointDir,
		Resume:         *resume,
		Setup:          setup,
		Analyze:        pipeline.AnalyzeOptions{CoresPerRank: float64(sys.CoresPerRank), TopKernels: *topKernels},
		Workers:        *jobs,
		MaxCampaigns:   *maxCampaigns,
		CoalesceWindow: *coalesce,
		RequestTimeout: *requestTimeout,
		StageTimeout:   *stageTimeout,
		Retries:        *retries,
		Observer:       obs,
	})
	if err != nil {
		return usage(err)
	}

	// Bind before Start so a bad -listen fails fast, and so tests using
	// port 0 can read the bound address from stdout.
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fail(err)
	}
	if err := srv.Start(ctx); err != nil {
		_ = ln.Close()
		return fail(err)
	}
	sayf(stdout, "edserve: listening on http://%s (spool %s)\n", ln.Addr(), *spoolDir)

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died underneath us; still drain running campaigns
		// so their checkpoints land.
		_ = srv.Drain(context.Background())
		return fail(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, finish in-flight requests, then
	// drain fit campaigns so checkpoint state is fully persisted.
	sayf(stdout, "edserve: shutting down\n")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := exitOK
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		sayf(stderr, "edserve: http shutdown: %v\n", err)
		code = exitFailure
	}
	if err := srv.Drain(shutdownCtx); err != nil {
		sayf(stderr, "edserve: %v\n", err)
		code = exitFailure
	}
	sayf(stdout, "edserve: drained\n")
	return code
}

// buildSetup derives the epoch.SetupFunc either from a built-in
// benchmark or from explicit flag values, mirroring the batch CLI so
// server-side fits are option-for-option identical to batch runs.
func buildSetup(benchmark string, strat parallel.Strategy, weak bool, batch, trainSamples, valSamples, m float64) (epoch.SetupFunc, error) {
	if benchmark != "" {
		b, err := engine.ByName(benchmark)
		if err != nil {
			return nil, err
		}
		return engine.SetupFunc(b, strat, weak), nil
	}
	if batch <= 0 || trainSamples <= 0 {
		return nil, fmt.Errorf("either -benchmark or -batch and -train-samples must be given")
	}
	return func(point measurement.Point) epoch.Params {
		ranks := point[0]
		train := trainSamples
		if weak {
			train *= ranks
		}
		return epoch.Params{
			BatchSize:     batch,
			TrainSamples:  train,
			ValSamples:    valSamples,
			DataParallel:  ranks,
			ModelParallel: m,
		}
	}, nil
}
