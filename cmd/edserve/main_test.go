package main

// End-to-end tests of the edserve binary entry point: flag/usage
// refusals, the full boot → serve → signal → drain cycle, and restart
// parity over a durable spool with -resume — all driven through run()
// with an injected context standing in for SIGTERM.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"resume without checkpoint dir", []string{"-resume", "-benchmark", "imdb"}},
		{"unknown strategy", []string{"-benchmark", "imdb", "-strategy", "nope"}},
		{"unknown system", []string{"-benchmark", "imdb", "-system", "nope"}},
		{"unknown benchmark", []string{"-benchmark", "nope"}},
		{"no setup source", []string{}},
		{"batch without train samples", []string{"-batch", "32"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(context.Background(), tc.args, &stdout, &stderr)
			if code != exitUsage {
				t.Fatalf("exit %d, want %d (usage); stderr: %s", code, exitUsage, stderr.String())
			}
		})
	}
}

func TestRunBadListen(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-benchmark", "imdb", "-spool", t.TempDir(), "-listen", "127.0.0.1:999999"}
	code := run(context.Background(), args, &stdout, &stderr)
	if code != exitFailure {
		t.Fatalf("exit %d, want %d (failure); stderr: %s", code, exitFailure, stderr.String())
	}
}

// syncBuffer is a goroutine-safe writer the boot tests poll for the
// bound-address line.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`listening on (http://[^ ]+) `)

// bootServer runs the command on an ephemeral port and returns its base
// URL, a stop function standing in for SIGTERM, and the exit-code
// channel.
func bootServer(t *testing.T, extraArgs ...string) (base string, stop func(), exited <-chan int, out *syncBuffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stdout := &syncBuffer{}
	stderr := &syncBuffer{}
	args := append([]string{"-listen", "127.0.0.1:0"}, extraArgs...)
	done := make(chan int, 1)
	go func() { done <- run(ctx, args, stdout, stderr) }()
	t.Cleanup(cancel)

	deadline := time.Now().Add(30 * time.Second)
	for {
		if m := listenLine.FindStringSubmatch(stdout.String()); m != nil {
			return m[1], cancel, done, stdout
		}
		select {
		case code := <-done:
			t.Fatalf("server exited %d before listening; stderr: %s", code, stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never printed its address; stdout: %s; stderr: %s", stdout.String(), stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// uploadBody builds a single-batch upload envelope from profile docs.
func uploadBody(t *testing.T, contents []string) []byte {
	t.Helper()
	type f struct {
		Content string `json:"content"`
	}
	req := struct {
		Format   string `json:"format"`
		Profiles []f    `json:"profiles"`
	}{Format: "json"}
	for _, c := range contents {
		req.Profiles = append(req.Profiles, f{Content: c})
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// simulateCampaign produces upload-ready imdb profile documents.
func simulateCampaign(t *testing.T, ranks []int, seed int64) []string {
	t.Helper()
	b, err := engine.ByName("imdb")
	if err != nil {
		t.Fatal(err)
	}
	var docs []string
	for _, r := range ranks {
		ps, err := engine.Profile(b, engine.RunConfig{
			System: hardware.DEEP(), Strategy: parallel.DataParallel{},
			Ranks: r, WeakScaling: true, Seed: seed, SampleRanks: 1,
		}, 1, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ps {
			data, err := json.Marshal(p)
			if err != nil {
				t.Fatal(err)
			}
			docs = append(docs, string(data))
		}
	}
	return docs
}

// get fetches a URL, returning status and body.
func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// waitModels polls /models until the first campaign publishes.
func waitModels(t *testing.T, base string) []byte {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		status, body := get(t, base+"/v1/apps/imdb/models")
		if status == http.StatusOK {
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("models never became ready; last: %d %s", status, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestRunBootServeShutdownRestart(t *testing.T) {
	spool, ckpt := t.TempDir(), t.TempDir()
	docs := simulateCampaign(t, []int{2, 4, 6, 8, 10}, 77)

	// First life: boot, upload, wait for the fit, remember the answers.
	base, stop, exited, out := bootServer(t,
		"-benchmark", "imdb", "-spool", spool, "-checkpoint-dir", ckpt, "-resume")
	if status, body := get(t, base+"/v1/health"); status != http.StatusOK {
		t.Fatalf("health: %d %s", status, body)
	}
	resp, err := http.Post(base+"/v1/apps/imdb/profiles", "application/json",
		bytes.NewReader(uploadBody(t, docs)))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	firstModels := waitModels(t, base)
	_, firstPredict := get(t, base+"/v1/apps/imdb/predict?x=8")

	// SIGTERM stand-in: cancel the context and require a clean, drained
	// exit.
	stop()
	select {
	case code := <-exited:
		if code != exitOK {
			t.Fatalf("shutdown exit %d, want %d", code, exitOK)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not exit after cancellation")
	}
	if text := out.String(); !strings.Contains(text, "drained") {
		t.Errorf("shutdown did not report draining; stdout: %s", text)
	}

	// Second life over the same spool + checkpoints: the rescan re-fits
	// (reusing checkpointed tasks) and must serve identical answers.
	base2, _, _, _ := bootServer(t,
		"-benchmark", "imdb", "-spool", spool, "-checkpoint-dir", ckpt, "-resume")
	secondModels := waitModels(t, base2)
	if !bytes.Equal(firstModels, secondModels) {
		t.Error("restarted server serves different models over the same spool")
	}
	_, secondPredict := get(t, base2+"/v1/apps/imdb/predict?x=8")
	if !bytes.Equal(firstPredict, secondPredict) {
		t.Errorf("restarted prediction differs: %s vs %s", firstPredict, secondPredict)
	}
}

func TestRunExplicitSetupFlags(t *testing.T) {
	// The explicit-flags setup path (no -benchmark) must boot too: it is
	// the route for profiles measured outside the simulator.
	spool := t.TempDir()
	base, stop, exited, _ := bootServer(t,
		"-spool", spool, "-batch", "32", "-train-samples", "25000", "-val-samples", "25000")
	if status, body := get(t, base+"/v1/health"); status != http.StatusOK {
		t.Fatalf("health: %d %s", status, body)
	}
	stop()
	select {
	case code := <-exited:
		if code != exitOK {
			t.Fatalf("exit %d, want %d", code, exitOK)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("no exit after cancel")
	}
}
