// Command edbench regenerates the paper's evaluation artifacts (every
// table and figure of Section 4 plus the Sections 2–3 case study) on the
// simulated substrate, prints the report tables, and optionally renders
// the figures as SVG files.
//
// Usage:
//
//	edbench -exp all
//	edbench -exp casestudy,figure8 -seed 42
//	edbench -exp all -plots out/
//	edbench -exp all -checkpoint-dir .edbench -resume
//
// Available experiments: casestudy, figure3, figure4b, figure5, figure6,
// figure7, figure8, table2, summary, all.
//
// A failing experiment no longer aborts the campaign: its error is
// reported, the remaining experiments still run, and the process exits
// with the partial-success code. With -checkpoint-dir every completed
// experiment's rendered artifacts (text and SVGs) persist under a
// content key of (experiment, seed), and -resume reuses them instead of
// recomputing — an interrupted campaign continues where it stopped.
//
// Exit codes:
//
//	0 — every requested experiment succeeded
//	1 — every requested experiment failed, or an I/O error
//	2 — flag or usage errors (unknown experiment)
//	4 — partial success: some experiments failed, the rest completed
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"extradeep/internal/experiments"
	"extradeep/internal/pipeline"
	"extradeep/internal/report"
	"extradeep/internal/resilience"
)

// Process exit codes; see the command doc comment.
const (
	exitOK      = 0
	exitFailure = 1
	exitUsage   = 2
	exitPartial = 4
)

// chart is anything that can render itself as SVG.
type chart interface {
	SVG() (string, error)
}

// teeObserver forwards stage events to two observers (the collector that
// feeds the report sections and the optional -timings log).
type teeObserver struct {
	a, b pipeline.Observer
}

func (t teeObserver) StageStart(s pipeline.Stage)      { t.a.StageStart(s); t.b.StageStart(s) }
func (t teeObserver) StageDone(st pipeline.StageStats) { t.a.StageDone(st); t.b.StageDone(st) }

// outcome is one experiment's artifacts as produced by its runner.
type outcome struct {
	text   string
	charts map[string]chart // file stem → chart
}

// renderedOutcome is one experiment's fully rendered artifacts — the
// checkpoint unit: the text report plus every chart already rendered to
// SVG, so a resumed campaign never recomputes anything for a cache hit.
type renderedOutcome struct {
	Text string            `json:"text"`
	SVGs map[string]string `json:"svgs,omitempty"`
}

// renderer pairs an experiment name with its runner.
type renderer struct {
	name string
	run  func(seed int64) (outcome, error)
}

func runners() []renderer {
	return []renderer{
		{"casestudy", func(seed int64) (outcome, error) {
			r, err := experiments.CaseStudy(seed)
			if err != nil {
				return outcome{}, err
			}
			return outcome{text: r.Render()}, nil
		}},
		{"figure3", func(seed int64) (outcome, error) {
			r, err := experiments.Figure3(seed)
			if err != nil {
				return outcome{}, err
			}
			return outcome{text: r.Render(), charts: map[string]chart{"figure3": r.Chart()}}, nil
		}},
		{"figure4b", func(seed int64) (outcome, error) {
			r, err := experiments.Figure4b(seed)
			if err != nil {
				return outcome{}, err
			}
			timeChart, costChart := r.Charts()
			return outcome{text: r.Render(), charts: map[string]chart{
				"figure4b_time": timeChart, "figure4b_cost": costChart,
			}}, nil
		}},
		{"figure5", func(seed int64) (outcome, error) {
			r, err := experiments.Figure5(seed)
			if err != nil {
				return outcome{}, err
			}
			return outcome{text: r.Render(), charts: map[string]chart{"figure5": r.Chart()}}, nil
		}},
		{"figure6", func(seed int64) (outcome, error) {
			r, err := experiments.Figure6(seed)
			if err != nil {
				return outcome{}, err
			}
			return outcome{text: r.Render(), charts: map[string]chart{"figure6": r.Chart()}}, nil
		}},
		{"figure7", func(seed int64) (outcome, error) {
			r, err := experiments.Figure7(seed)
			if err != nil {
				return outcome{}, err
			}
			return outcome{text: r.Render(), charts: map[string]chart{"figure7": r.Chart()}}, nil
		}},
		{"figure8", func(int64) (outcome, error) {
			r, err := experiments.Figure8()
			if err != nil {
				return outcome{}, err
			}
			return outcome{text: r.Render(), charts: map[string]chart{"figure8": r.Chart()}}, nil
		}},
		{"table2", func(seed int64) (outcome, error) {
			r, err := experiments.Table2(seed)
			if err != nil {
				return outcome{}, err
			}
			return outcome{text: r.Render()}, nil
		}},
		{"summary", func(seed int64) (outcome, error) {
			r, err := experiments.Summary(seed)
			if err != nil {
				return outcome{}, err
			}
			return outcome{text: r.Render()}, nil
		}},
		{"baselines", func(seed int64) (outcome, error) {
			r, err := experiments.Baselines(seed, "cifar10")
			if err != nil {
				return outcome{}, err
			}
			return outcome{text: r.Render()}, nil
		}},
		{"scalability", func(seed int64) (outcome, error) {
			weak, err := experiments.Scalability(seed, "cifar10", true)
			if err != nil {
				return outcome{}, err
			}
			strong, err := experiments.Scalability(seed, "imagenet", false)
			if err != nil {
				return outcome{}, err
			}
			return outcome{
				text: weak.Render() + "\n" + strong.Render(),
				charts: map[string]chart{
					"scalability_weak":   weak.Chart(),
					"scalability_strong": strong.Chart(),
				},
			}, nil
		}},
	}
}

// experimentKey is the content key one experiment's artifacts are cached
// under: the renderer name and the seed, so a different seed can never
// reuse stale artifacts.
func experimentKey(name string, seed int64) string {
	return resilience.Key([]byte("edbench/v1"), []byte(name), []byte(strconv.FormatInt(seed, 10)))
}

// render turns a runner's outcome into the cacheable rendered form,
// rendering every chart to SVG up front.
func render(out outcome) (renderedOutcome, error) {
	ro := renderedOutcome{Text: out.text}
	for stem, c := range out.charts {
		svg, err := c.SVG()
		if err != nil {
			return renderedOutcome{}, fmt.Errorf("rendering %s: %w", stem, err)
		}
		if ro.SVGs == nil {
			ro.SVGs = make(map[string]string)
		}
		ro.SVGs[stem] = svg
	}
	return ro, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// sayf and sayln print best-effort to the chosen writer; a failed
// diagnostic write has no sensible recovery in a CLI, so the error is
// deliberately discarded.
func sayf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

func sayln(w io.Writer, args ...any) {
	_, _ = fmt.Fprintln(w, args...)
}

// run executes the command and returns its process exit code; tests drive
// it directly with buffers.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("edbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	expFlag := fs.String("exp", "all", "comma-separated experiments to run (or 'all')")
	seed := fs.Int64("seed", 7, "base random seed for the simulated measurements")
	plotsDir := fs.String("plots", "", "write the figures as SVG files into this directory")
	htmlPath := fs.String("html", "", "write a self-contained HTML report to this file")
	timings := fs.Bool("timings", false, "print per-stage observer lines to stderr")
	checkpointDir := fs.String("checkpoint-dir", "", "cache each experiment's rendered artifacts in this directory")
	resume := fs.Bool("resume", false, "reuse cached artifacts from -checkpoint-dir for unchanged (experiment, seed) pairs")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *resume && *checkpointDir == "" {
		sayln(stderr, "edbench: -resume requires -checkpoint-dir")
		return exitUsage
	}

	wanted := make(map[string]bool)
	all := *expFlag == "all"
	for _, name := range strings.Split(*expFlag, ",") {
		wanted[strings.TrimSpace(name)] = true
	}

	known := runners()
	if !all {
		wantedNames := make([]string, 0, len(wanted))
		for name := range wanted {
			wantedNames = append(wantedNames, name)
		}
		sort.Strings(wantedNames)
		for _, name := range wantedNames {
			found := false
			for _, r := range known {
				if r.name == name {
					found = true
				}
			}
			if !found && name != "all" {
				sayf(stderr, "edbench: unknown experiment %q\n", name)
				return exitUsage
			}
		}
	}
	if *plotsDir != "" {
		if err := os.MkdirAll(*plotsDir, 0o755); err != nil {
			sayf(stderr, "edbench: %v\n", err)
			return exitFailure
		}
	}
	var store *resilience.Store
	if *checkpointDir != "" {
		store = &resilience.Store{Dir: *checkpointDir}
	}

	htmlReport := &report.Report{
		Title:    "Extra-Deep reproduction report",
		Subtitle: fmt.Sprintf("simulated substrate, seed %d — see EXPERIMENTS.md for paper-vs-measured notes", *seed),
	}
	// Each experiment runs as one observed pipeline stage: the collector
	// supplies the elapsed time for the report section, and -timings
	// mirrors the same events to stderr — the sequencing/timing contract
	// is the pipeline's, not re-implemented here.
	collector := &pipeline.Collector{}
	ran, failed := 0, []string{}
	for _, r := range known {
		if !all && !wanted[r.name] {
			continue
		}
		ran++
		var ro renderedOutcome
		obs := pipeline.Observer(collector)
		if *timings {
			obs = teeObserver{collector, &pipeline.LogObserver{W: stderr}}
		}
		err := pipeline.Observe(obs, pipeline.Stage(r.name), func() (pipeline.Counters, error) {
			key := experimentKey(r.name, *seed)
			if *resume {
				if payload, ok := store.Get(key); ok {
					var cached renderedOutcome
					if json.Unmarshal(payload, &cached) == nil && cached.Text != "" {
						ro = cached
						return pipeline.Counters{"cached": 1}, nil
					}
					// Damaged or stale cache entry: recover to a miss.
				}
			}
			out, err := r.run(*seed)
			if err != nil {
				return nil, err
			}
			if ro, err = render(out); err != nil {
				return nil, err
			}
			if store != nil {
				if payload, merr := json.Marshal(ro); merr == nil {
					_ = store.Put(key, payload)
				}
			}
			return nil, nil
		})
		if err != nil {
			// Graceful degradation: name the failure, keep the campaign
			// going, and report partial success at the end.
			sayf(stderr, "edbench: %s: %v\n", r.name, err)
			failed = append(failed, r.name)
			continue
		}
		sayln(stdout, ro.Text)
		elapsed := collector.Last().Duration
		section := report.Section{Title: r.name, Text: ro.Text, Elapsed: elapsed}
		stems := make([]string, 0, len(ro.SVGs))
		for stem := range ro.SVGs {
			stems = append(stems, stem)
		}
		sort.Strings(stems)
		for _, stem := range stems {
			svg := ro.SVGs[stem]
			section.SVGs = append(section.SVGs, svg)
			if *plotsDir != "" {
				path := filepath.Join(*plotsDir, stem+".svg")
				if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
					sayf(stderr, "edbench: %v\n", err)
					return exitFailure
				}
				sayf(stdout, "[wrote %s]\n", path)
			}
		}
		htmlReport.Add(section)
		sayf(stdout, "[%s completed in %v]\n\n", r.name, elapsed.Round(time.Millisecond))
	}
	if *htmlPath != "" {
		html, err := htmlReport.HTML()
		if err != nil {
			sayf(stderr, "edbench: %v\n", err)
			return exitFailure
		}
		if err := os.WriteFile(*htmlPath, []byte(html), 0o644); err != nil {
			sayf(stderr, "edbench: %v\n", err)
			return exitFailure
		}
		sayf(stdout, "[wrote %s]\n", *htmlPath)
	}
	if len(failed) > 0 {
		sayf(stderr, "edbench: %d of %d experiments failed: %s\n",
			len(failed), ran, strings.Join(failed, ", "))
		if len(failed) == ran {
			return exitFailure
		}
		return exitPartial
	}
	return exitOK
}
