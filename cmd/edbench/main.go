// Command edbench regenerates the paper's evaluation artifacts (every
// table and figure of Section 4 plus the Sections 2–3 case study) on the
// simulated substrate, prints the report tables, and optionally renders
// the figures as SVG files.
//
// Usage:
//
//	edbench -exp all
//	edbench -exp casestudy,figure8 -seed 42
//	edbench -exp all -plots out/
//
// Available experiments: casestudy, figure3, figure4b, figure5, figure6,
// figure7, figure8, table2, summary, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"extradeep/internal/experiments"
	"extradeep/internal/pipeline"
	"extradeep/internal/report"
)

// chart is anything that can render itself as SVG.
type chart interface {
	SVG() (string, error)
}

// teeObserver forwards stage events to two observers (the collector that
// feeds the report sections and the optional -timings log).
type teeObserver struct {
	a, b pipeline.Observer
}

func (t teeObserver) StageStart(s pipeline.Stage)      { t.a.StageStart(s); t.b.StageStart(s) }
func (t teeObserver) StageDone(st pipeline.StageStats) { t.a.StageDone(st); t.b.StageDone(st) }

// outcome is one experiment's rendered artifacts.
type outcome struct {
	text   string
	charts map[string]chart // file stem → chart
}

// renderer pairs an experiment name with its runner.
type renderer struct {
	name string
	run  func(seed int64) (outcome, error)
}

func runners() []renderer {
	return []renderer{
		{"casestudy", func(seed int64) (outcome, error) {
			r, err := experiments.CaseStudy(seed)
			if err != nil {
				return outcome{}, err
			}
			return outcome{text: r.Render()}, nil
		}},
		{"figure3", func(seed int64) (outcome, error) {
			r, err := experiments.Figure3(seed)
			if err != nil {
				return outcome{}, err
			}
			return outcome{text: r.Render(), charts: map[string]chart{"figure3": r.Chart()}}, nil
		}},
		{"figure4b", func(seed int64) (outcome, error) {
			r, err := experiments.Figure4b(seed)
			if err != nil {
				return outcome{}, err
			}
			timeChart, costChart := r.Charts()
			return outcome{text: r.Render(), charts: map[string]chart{
				"figure4b_time": timeChart, "figure4b_cost": costChart,
			}}, nil
		}},
		{"figure5", func(seed int64) (outcome, error) {
			r, err := experiments.Figure5(seed)
			if err != nil {
				return outcome{}, err
			}
			return outcome{text: r.Render(), charts: map[string]chart{"figure5": r.Chart()}}, nil
		}},
		{"figure6", func(seed int64) (outcome, error) {
			r, err := experiments.Figure6(seed)
			if err != nil {
				return outcome{}, err
			}
			return outcome{text: r.Render(), charts: map[string]chart{"figure6": r.Chart()}}, nil
		}},
		{"figure7", func(seed int64) (outcome, error) {
			r, err := experiments.Figure7(seed)
			if err != nil {
				return outcome{}, err
			}
			return outcome{text: r.Render(), charts: map[string]chart{"figure7": r.Chart()}}, nil
		}},
		{"figure8", func(int64) (outcome, error) {
			r, err := experiments.Figure8()
			if err != nil {
				return outcome{}, err
			}
			return outcome{text: r.Render(), charts: map[string]chart{"figure8": r.Chart()}}, nil
		}},
		{"table2", func(seed int64) (outcome, error) {
			r, err := experiments.Table2(seed)
			if err != nil {
				return outcome{}, err
			}
			return outcome{text: r.Render()}, nil
		}},
		{"summary", func(seed int64) (outcome, error) {
			r, err := experiments.Summary(seed)
			if err != nil {
				return outcome{}, err
			}
			return outcome{text: r.Render()}, nil
		}},
		{"baselines", func(seed int64) (outcome, error) {
			r, err := experiments.Baselines(seed, "cifar10")
			if err != nil {
				return outcome{}, err
			}
			return outcome{text: r.Render()}, nil
		}},
		{"scalability", func(seed int64) (outcome, error) {
			weak, err := experiments.Scalability(seed, "cifar10", true)
			if err != nil {
				return outcome{}, err
			}
			strong, err := experiments.Scalability(seed, "imagenet", false)
			if err != nil {
				return outcome{}, err
			}
			return outcome{
				text: weak.Render() + "\n" + strong.Render(),
				charts: map[string]chart{
					"scalability_weak":   weak.Chart(),
					"scalability_strong": strong.Chart(),
				},
			}, nil
		}},
	}
}

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiments to run (or 'all')")
	seed := flag.Int64("seed", 7, "base random seed for the simulated measurements")
	plotsDir := flag.String("plots", "", "write the figures as SVG files into this directory")
	htmlPath := flag.String("html", "", "write a self-contained HTML report to this file")
	timings := flag.Bool("timings", false, "print per-stage observer lines to stderr")
	flag.Parse()

	wanted := make(map[string]bool)
	all := *expFlag == "all"
	for _, name := range strings.Split(*expFlag, ",") {
		wanted[strings.TrimSpace(name)] = true
	}

	known := runners()
	if !all {
		wantedNames := make([]string, 0, len(wanted))
		for name := range wanted {
			wantedNames = append(wantedNames, name)
		}
		sort.Strings(wantedNames)
		for _, name := range wantedNames {
			found := false
			for _, r := range known {
				if r.name == name {
					found = true
				}
			}
			if !found && name != "all" {
				fmt.Fprintf(os.Stderr, "edbench: unknown experiment %q\n", name)
				os.Exit(2)
			}
		}
	}
	if *plotsDir != "" {
		if err := os.MkdirAll(*plotsDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "edbench: %v\n", err)
			os.Exit(1)
		}
	}

	htmlReport := &report.Report{
		Title:    "Extra-Deep reproduction report",
		Subtitle: fmt.Sprintf("simulated substrate, seed %d — see EXPERIMENTS.md for paper-vs-measured notes", *seed),
	}
	// Each experiment runs as one observed pipeline stage: the collector
	// supplies the elapsed time for the report section, and -timings
	// mirrors the same events to stderr — the sequencing/timing contract
	// is the pipeline's, not re-implemented here.
	collector := &pipeline.Collector{}
	for _, r := range known {
		if !all && !wanted[r.name] {
			continue
		}
		var out outcome
		obs := pipeline.Observer(collector)
		if *timings {
			obs = teeObserver{collector, &pipeline.LogObserver{W: os.Stderr}}
		}
		err := pipeline.Observe(obs, pipeline.Stage(r.name), func() (pipeline.Counters, error) {
			var err error
			out, err = r.run(*seed)
			return nil, err
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "edbench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(out.text)
		elapsed := collector.Last().Duration
		section := report.Section{Title: r.name, Text: out.text, Elapsed: elapsed}
		stems := make([]string, 0, len(out.charts))
		for stem := range out.charts {
			stems = append(stems, stem)
		}
		sort.Strings(stems)
		for _, stem := range stems {
			svg, err := out.charts[stem].SVG()
			if err != nil {
				fmt.Fprintf(os.Stderr, "edbench: rendering %s: %v\n", stem, err)
				os.Exit(1)
			}
			section.SVGs = append(section.SVGs, svg)
			if *plotsDir != "" {
				path := filepath.Join(*plotsDir, stem+".svg")
				if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "edbench: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("[wrote %s]\n", path)
			}
		}
		htmlReport.Add(section)
		fmt.Printf("[%s completed in %v]\n\n", r.name, elapsed.Round(time.Millisecond))
	}
	if *htmlPath != "" {
		html, err := htmlReport.HTML()
		if err != nil {
			fmt.Fprintf(os.Stderr, "edbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*htmlPath, []byte(html), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "edbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %s]\n", *htmlPath)
	}
}
