package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestUnknownExperimentIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "nope"}, &stdout, &stderr); code != exitUsage {
		t.Fatalf("exit %d, want %d", code, exitUsage)
	}
	if !strings.Contains(stderr.String(), `unknown experiment "nope"`) {
		t.Errorf("stderr lacks diagnosis:\n%s", stderr.String())
	}
}

func TestResumeRequiresCheckpointDir(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "figure8", "-resume"}, &stdout, &stderr); code != exitUsage {
		t.Fatalf("exit %d, want %d", code, exitUsage)
	}
}

// reportText strips the wall-clock completion marker lines, leaving only
// the deterministic experiment output.
func reportText(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "[") && strings.Contains(line, "completed in") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestResumeReusesCachedArtifacts: a second run with -resume serves the
// experiment from the checkpoint cache (visible as the cached counter in
// -timings) and prints the identical report text.
func TestResumeReusesCachedArtifacts(t *testing.T) {
	ckpt := t.TempDir()
	var cold, resumed, stderr bytes.Buffer
	if code := run([]string{"-exp", "figure8", "-checkpoint-dir", ckpt}, &cold, &stderr); code != exitOK {
		t.Fatalf("cold run exit %d; stderr:\n%s", code, stderr.String())
	}
	stderr.Reset()
	code := run([]string{"-exp", "figure8", "-checkpoint-dir", ckpt, "-resume", "-timings"}, &resumed, &stderr)
	if code != exitOK {
		t.Fatalf("resume exit %d; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "cached=1") {
		t.Errorf("resume did not hit the cache; -timings stderr:\n%s", stderr.String())
	}
	if reportText(resumed.String()) != reportText(cold.String()) {
		t.Errorf("resumed report text differs from cold run:\n--- cold ---\n%s\n--- resumed ---\n%s",
			cold.String(), resumed.String())
	}
}
