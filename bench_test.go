// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 4) plus the ablation studies called out in
// DESIGN.md. Each benchmark regenerates the artifact end to end — from
// simulated profiling through aggregation, extrapolation, model creation
// and analysis — and reports the headline quantity of that artifact as a
// custom metric, so `go test -bench=. -benchmem` doubles as the
// reproduction run.
package extradeep_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"extradeep/internal/core"
	"extradeep/internal/epoch"
	"extradeep/internal/experiments"
	"extradeep/internal/modeling"
	"extradeep/internal/pipeline"
	"extradeep/internal/profile"
	"extradeep/internal/resilience"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

// benchSeed keeps all artifacts on a single reproducible measurement set.
const benchSeed = 7

// BenchmarkCaseStudy regenerates the Sections 2–3 running example (E1,
// E9, E10): the ResNet-50/CIFAR-10 weak-scaling models answering Q1–Q5.
// Reported metric: the Q1 prediction error proxy — the model's percentage
// error at the farthest evaluation point (64 ranks).
func BenchmarkCaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs, err := experiments.CaseStudy(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cs.Errors[64], "pct_err@64")
		b.ReportMetric(cs.CommAt64/cs.CommAt2, "comm_growth_2to64")
	}
}

// BenchmarkFigure3 regenerates Fig. 3 (E2): model vs. measured training
// time with confidence intervals. Reported metric: the fraction of
// measured points inside the 95% CI.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure3(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		within := 0
		for _, p := range f.Points {
			if p.WithinCI {
				within++
			}
		}
		b.ReportMetric(float64(within)/float64(len(f.Points)), "within_ci_frac")
	}
}

// BenchmarkFigure4b regenerates the cost-effectiveness example (E3).
// Reported metric: the selected configuration's node count.
func BenchmarkFigure4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure4b(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Best.Ranks, "best_nodes")
	}
}

// BenchmarkFigure5 regenerates the parallel-strategy comparison on JURECA
// (E4) across all five benchmarks, weak and strong scaling. Reported
// metric: the worst strategy MPE at 64 nodes (paper: 18.4%).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure5(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, byNode := range f.MPE {
			if v := byNode[64]; v > worst {
				worst = v
			}
		}
		b.ReportMetric(worst, "worst_mpe@64nodes")
	}
}

// BenchmarkFigure6 regenerates the DEEP-vs-JURECA comparison (E5).
// Reported metric: JURECA's MPE at 64 nodes (paper: 15.4%).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure6(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.MPE["JURECA"][64], "jureca_mpe@64nodes")
	}
}

// BenchmarkFigure7 regenerates the per-benchmark predictive-power study on
// DEEP (E6). Reported metric: the spread between the worst and best
// benchmark error at 64 nodes (paper: 4.1%).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure7(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		min, max := 1e18, 0.0
		for _, byNode := range f.Error {
			v := byNode[64]
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		b.ReportMetric(max-min, "err_spread@64nodes")
	}
}

// BenchmarkFigure8 regenerates the profiling-overhead study (E7).
// Reported metric: the average profiling-time reduction (paper: 94.9%).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.AvgSavings*100, "avg_savings_pct")
	}
}

// BenchmarkTable2 regenerates the per-model-type accuracy table (E8).
// Reported metric: the CUDA-kernel time MPE at 64 nodes (paper: 15.6%).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Key.Group == "CUDA kernels" && string(row.Key.Metric) == "time" {
				b.ReportMetric(row.MPE[64], "cuda_time_mpe@64nodes")
			}
		}
	}
}

// BenchmarkSummary regenerates the Section 4.3 headline numbers (E11).
// Reported metrics: average model accuracy (paper: 97.6%) and average
// prediction accuracy at 4× scale (paper: 93.6%).
func BenchmarkSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Summary(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s.ModelAccuracy, "model_acc_pct")
		b.ReportMetric(s.PredictionAccuracy, "pred_acc_pct")
	}
}

// BenchmarkBaselines regenerates the baseline comparison (Extra-Deep vs.
// full-run Extra-P-style profiling vs. PALEO-style analytical modeling).
// Reported metrics: each approach's MPE over the evaluation points and the
// profiling-cost ratio.
func BenchmarkBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Baselines(benchSeed, "cifar10")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ExtraDeepMPE, "extradeep_mpe")
		b.ReportMetric(r.FullProfilingMPE, "fullprof_mpe")
		b.ReportMetric(r.AnalyticalMPE, "analytical_mpe")
		b.ReportMetric(r.ProfiledSecondsFull/r.ProfiledSecondsSampled, "profiling_cost_ratio")
	}
}

// ---------------------------------------------------------------------
// Ablation benches (DESIGN.md §5) — each varies one design choice of the
// pipeline and reports the resulting prediction error at 64 ranks on the
// CIFAR-10/DEEP weak-scaling campaign.
// ---------------------------------------------------------------------

// ablationCampaign builds the shared CIFAR-10 campaign.
func ablationCampaign(b *testing.B) core.Campaign {
	b.Helper()
	bench, err := engine.ByName("cifar10")
	if err != nil {
		b.Fatal(err)
	}
	return core.Campaign{
		Benchmark: bench,
		Config: engine.RunConfig{
			System:      hardware.DEEP(),
			Strategy:    parallel.DataParallel{FusionBuckets: 4},
			WeakScaling: true,
			Seed:        benchSeed,
			SampleRanks: 4,
		},
		ModelingRanks: []int{2, 4, 6, 8, 10},
		EvalRanks:     []int{64},
		Reps:          5,
	}
}

func runAblation(b *testing.B, camp core.Campaign) float64 {
	b.Helper()
	res, err := core.RunCampaign(camp)
	if err != nil {
		b.Fatal(err)
	}
	e, ok := res.PercentError(epoch.AppPath, 64)
	if !ok {
		b.Fatal("no prediction error at 64 ranks")
	}
	return e
}

// BenchmarkAblationAggregator compares median against mean aggregation
// across steps, ranks and repetitions (the noise-resilience design choice
// of Fig. 2).
func BenchmarkAblationAggregator(b *testing.B) {
	for _, useMean := range []bool{false, true} {
		name := "median"
		if useMean {
			name = "mean"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				camp := ablationCampaign(b)
				camp.Options = core.DefaultOptions()
				camp.Options.Aggregation.UseMean = useMean
				camp.Options.Modeling.UseMean = useMean
				b.ReportMetric(runAblation(b, camp), "pct_err@64")
			}
		})
	}
}

// BenchmarkAblationSteps varies how many training steps per epoch the
// efficient sampling strategy profiles (the paper uses 5).
func BenchmarkAblationSteps(b *testing.B) {
	for _, steps := range []int{1, 3, 5, 10} {
		b.Run(map[int]string{1: "1step", 3: "3steps", 5: "5steps", 10: "10steps"}[steps], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				camp := ablationCampaign(b)
				camp.Config.ProfileSteps = steps
				b.ReportMetric(runAblation(b, camp), "pct_err@64")
			}
		})
	}
}

// BenchmarkAblationSearchSpace varies the PMNF hypothesis search space
// (reduced integer exponents / the Extra-P default / two-term models).
func BenchmarkAblationSearchSpace(b *testing.B) {
	spaces := []struct {
		name string
		opts modeling.Options
	}{
		{"small", modeling.SmallOptions()},
		{"default", modeling.DefaultOptions()},
		{"large", modeling.LargeOptions()},
	}
	for _, space := range spaces {
		b.Run(space.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				camp := ablationCampaign(b)
				camp.Options = core.DefaultOptions()
				camp.Options.Modeling = space.opts
				b.ReportMetric(runAblation(b, camp), "pct_err@64")
			}
		})
	}
}

// BenchmarkAblationPoints varies the number of modeling points (the paper
// requires at least 5 to separate logarithmic, linear and polynomial
// growth).
func BenchmarkAblationPoints(b *testing.B) {
	sets := map[string][]int{
		"4points": {2, 4, 6, 8},
		"5points": {2, 4, 6, 8, 10},
		"6points": {2, 4, 6, 8, 10, 12},
		"8points": {2, 4, 6, 8, 10, 12, 16, 24},
	}
	for _, name := range []string{"4points", "5points", "6points", "8points"} {
		ranks := sets[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				camp := ablationCampaign(b)
				camp.ModelingRanks = ranks
				camp.Options = core.DefaultOptions()
				camp.Options.Modeling.MinPoints = len(ranks)
				b.ReportMetric(runAblation(b, camp), "pct_err@64")
			}
		})
	}
}

// BenchmarkPipelineOnly measures the modeling pipeline itself (aggregation
// through model selection) without the simulation, quantifying the
// tool-side cost per campaign.
func BenchmarkPipelineOnly(b *testing.B) {
	bench, err := engine.ByName("cifar10")
	if err != nil {
		b.Fatal(err)
	}
	cfg := engine.RunConfig{
		System:      hardware.DEEP(),
		Strategy:    parallel.DataParallel{FusionBuckets: 4},
		WeakScaling: true,
		Seed:        benchSeed,
		SampleRanks: 4,
	}
	// Pre-generate the profiles once.
	var allProfiles []*profile.Profile
	for _, ranks := range []int{2, 4, 6, 8, 10} {
		cfg.Ranks = ranks
		for rep := 1; rep <= 5; rep++ {
			ps, err := engine.Profile(bench, cfg, rep, true)
			if err != nil {
				b.Fatal(err)
			}
			allProfiles = append(allProfiles, ps...)
		}
	}
	setup := engine.SetupFunc(bench, cfg.Strategy, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aggs, err := core.AggregateProfiles(allProfiles, core.DefaultOptions().Aggregation)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.BuildModels(aggs, setup, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineResilience quantifies the resilience layer's cost on
// the BenchmarkPipelineOnly campaign (BENCH_resilience.json tracks the
// trajectory):
//
//	off        zero-valued config — the hooks reduce to context checks
//	armed      injector armed (empty schedule) + stage deadline + retrier
//	checkpoint armed plus incremental campaign checkpointing (fresh store)
//	resume     armed plus resume over a fully warm store (no refitting)
//
// The off→armed gap is the pure hook overhead the resilience layer adds
// to every run; the gate expectation is ≤ 2% of the ~30ms/op baseline.
func BenchmarkPipelineResilience(b *testing.B) {
	bench, err := engine.ByName("cifar10")
	if err != nil {
		b.Fatal(err)
	}
	cfg := engine.RunConfig{
		System:      hardware.DEEP(),
		Strategy:    parallel.DataParallel{FusionBuckets: 4},
		WeakScaling: true,
		Seed:        benchSeed,
		SampleRanks: 4,
	}
	var allProfiles []*profile.Profile
	for _, ranks := range []int{2, 4, 6, 8, 10} {
		cfg.Ranks = ranks
		for rep := 1; rep <= 5; rep++ {
			ps, err := engine.Profile(bench, cfg, rep, true)
			if err != nil {
				b.Fatal(err)
			}
			allProfiles = append(allProfiles, ps...)
		}
	}
	setup := engine.SetupFunc(bench, cfg.Strategy, true)
	aggs, err := core.AggregateProfiles(allProfiles, core.DefaultOptions().Aggregation)
	if err != nil {
		b.Fatal(err)
	}
	armed := func() pipeline.Config {
		return pipeline.Config{
			Injector:     resilience.NewInjector(nil),
			StageTimeout: time.Hour,
			Retry:        resilience.RetryPolicy{MaxAttempts: 3, Seed: benchSeed},
		}
	}
	runOnce := func(b *testing.B, cfg pipeline.Config) {
		b.Helper()
		if _, err := pipeline.New(cfg).BuildModels(context.Background(), aggs, setup); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runOnce(b, pipeline.Config{})
		}
	})
	b.Run("armed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runOnce(b, armed())
		}
	})
	b.Run("checkpoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := armed()
			cfg.Checkpoint = &resilience.Store{Dir: b.TempDir()}
			runOnce(b, cfg)
		}
	})
	b.Run("resume", func(b *testing.B) {
		store := &resilience.Store{Dir: b.TempDir()}
		warm := armed()
		warm.Checkpoint = store
		runOnce(b, warm)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := armed()
			cfg.Checkpoint = store
			cfg.Resume = true
			runOnce(b, cfg)
		}
	})
}

// BenchmarkParallelFit measures the fit stage's worker-pool scaling: the
// same multi-kernel campaign (cifar10, 5 configurations × 5 repetitions)
// modeled sequentially (-j 1) and with growing pool sizes. The outputs are
// byte-identical across pool sizes; only wall-clock should move.
func BenchmarkParallelFit(b *testing.B) {
	bench, err := engine.ByName("cifar10")
	if err != nil {
		b.Fatal(err)
	}
	cfg := engine.RunConfig{
		System:      hardware.DEEP(),
		Strategy:    parallel.DataParallel{FusionBuckets: 4},
		WeakScaling: true,
		Seed:        benchSeed,
		SampleRanks: 4,
	}
	var allProfiles []*profile.Profile
	for _, ranks := range []int{2, 4, 6, 8, 10} {
		cfg.Ranks = ranks
		for rep := 1; rep <= 5; rep++ {
			ps, err := engine.Profile(bench, cfg, rep, true)
			if err != nil {
				b.Fatal(err)
			}
			allProfiles = append(allProfiles, ps...)
		}
	}
	setup := engine.SetupFunc(bench, cfg.Strategy, true)
	aggs, err := core.AggregateProfiles(allProfiles, core.DefaultOptions().Aggregation)
	if err != nil {
		b.Fatal(err)
	}
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j%d", jobs), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Workers = jobs
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildModels(aggs, setup, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
