// Multi-parameter modeling: build a two-parameter performance model
// T(p, B) over the number of MPI ranks *and* the per-worker batch size —
// the P(x₁, x₂) scenario from the paper's Section 2.3 — and use it to pick
// a batch size for a target scale.
//
// Run with:
//
//	go run ./examples/multiparam
package main

import (
	"fmt"
	"log"

	"extradeep/internal/core"
	"extradeep/internal/epoch"
	"extradeep/internal/measurement"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

func main() {
	b, err := engine.ByName("cifar10")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Profiling a 5×5 grid over ranks × batch size (2 repetitions per cell)…")
	res, err := core.RunGridCampaign(core.GridCampaign{
		Benchmark: b,
		Config: engine.RunConfig{
			System:      hardware.DEEP(),
			Strategy:    parallel.DataParallel{FusionBuckets: 4},
			WeakScaling: true,
			Seed:        13,
			SampleRanks: 2,
		},
		Ranks:   []int{2, 4, 6, 8, 10},
		Batches: []int{32, 64, 128, 256, 512},
		Reps:    2,
	})
	if err != nil {
		log.Fatal(err)
	}

	m := res.Models.App[epoch.AppPath]
	fmt.Printf("\ntwo-parameter model: T(p, B) = %s\n", m.Function)
	fmt.Printf("fit quality: CV-SMAPE %.2f%%\n\n", m.SMAPE)

	// Evaluate the surface: per-epoch training time across the grid.
	fmt.Printf("%8s", "ranks\\B")
	batches := []float64{32, 64, 128, 256, 512, 1024}
	for _, bt := range batches {
		fmt.Printf("%9.0f", bt)
	}
	fmt.Println()
	for _, p := range []float64{4, 16, 64} {
		fmt.Printf("%8.0f", p)
		for _, bt := range batches {
			fmt.Printf("%8.1fs", m.Function.Eval(p, bt))
		}
		fmt.Println()
	}

	// Which batch size minimizes the predicted epoch time at 64 ranks?
	best, bestT := 0.0, 1e18
	for _, bt := range batches {
		if t := m.Function.Eval(64, bt); t < bestT {
			best, bestT = bt, t
		}
	}
	fmt.Printf("\npredicted best batch size at 64 ranks: %.0f (%.1f s/epoch)\n", best, bestT)

	// Compare one held-out measurement against the surface.
	actual, ok := res.ActualAppMedian(epoch.AppPath, measurement.Point{8, 128})
	if ok {
		pred := m.Function.Eval(8, 128)
		fmt.Printf("sanity: measured T(8,128) = %.1f s, model = %.1f s (%.1f%% off)\n",
			actual, pred, 100*abs(pred-actual)/actual)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
