// Cost planner: find the most cost-effective training configuration for a
// strong-scaling training task under a compute budget and a deadline — the
// paper's Section 3.3 / Fig. 4 workflow.
//
// Run with:
//
//	go run ./examples/cost-planner [-budget 5.5] [-max-time 70]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"

	"extradeep/internal/analysis"
	"extradeep/internal/core"
	"extradeep/internal/epoch"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

func main() {
	budget := flag.Float64("budget", 8, "compute budget in core-hours per epoch")
	maxTime := flag.Float64("max-time", 110, "deadline: maximum training time per epoch in seconds")
	flag.Parse()

	b, err := engine.ByName("imagenet")
	if err != nil {
		log.Fatal(err)
	}
	sys := hardware.DEEP()

	fmt.Println("Profiling ImageNet/EfficientNet-B0 under strong scaling (fixed global batch)…")
	camp := core.Campaign{
		Benchmark: b,
		Config: engine.RunConfig{
			System:      sys,
			Strategy:    parallel.DataParallel{FusionBuckets: 4},
			WeakScaling: false, // strong scaling
			Seed:        23,
			SampleRanks: 4,
		},
		ModelingRanks: []int{2, 4, 6, 8, 10},
		Reps:          3,
	}
	res, err := core.RunCampaign(camp)
	if err != nil {
		log.Fatal(err)
	}
	model := res.Models.App[epoch.AppPath]
	fmt.Printf("\nruntime model: T(p) = %s\n", model.Function)

	cm := analysis.CostModel{Runtime: model.Function, CoresPerRank: float64(sys.CoresPerRank)}
	candidates := []float64{8, 16, 24, 32, 40, 48, 56, 64}
	constraint := analysis.Constraint{MaxTime: *maxTime, Budget: *budget}

	fs, err := analysis.Evaluate(model.Function, cm, candidates, constraint)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconstraints: deadline %.0f s/epoch, budget %.2f core-hours/epoch\n\n", *maxTime, *budget)
	fmt.Printf("%6s  %10s  %14s  %9s  %9s  %10s\n", "ranks", "T(p) [s]", "cost [core-h]", "deadline", "budget", "efficiency")
	for _, f := range fs {
		fmt.Printf("%6.0f  %10.2f  %14.3f  %9v  %9v  %10.3f\n",
			f.Ranks, f.Time, f.Cost, f.TimeOK, f.CostOK, f.Efficiency)
	}

	best, err := analysis.MostCostEffective(model.Function, cm, candidates, constraint)
	switch {
	case errors.Is(err, analysis.ErrNoFeasibleConfig):
		fmt.Println("\nNo configuration satisfies both constraints — relax the deadline or raise the budget.")
	case err != nil:
		log.Fatal(err)
	default:
		fmt.Printf("\nmost cost-effective configuration: %.0f ranks (%.1f s/epoch, %.2f core-hours/epoch)\n",
			best.Ranks, best.Time, best.Cost)
	}
}
