// Bottleneck hunt: profile a distributed training application at a few
// small scales, model every kernel, and rank the kernels by their growth
// trend to find the latent scalability bottleneck (the paper's Q3 and
// Section 3.1).
//
// Run with:
//
//	go run ./examples/bottleneck-hunt [-benchmark speechcommands] [-system JURECA]
package main

import (
	"flag"
	"fmt"
	"log"

	"extradeep/internal/analysis"
	"extradeep/internal/core"
	"extradeep/internal/epoch"
	"extradeep/internal/measurement"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

func main() {
	benchName := flag.String("benchmark", "speechcommands", "benchmark to analyze")
	sysName := flag.String("system", "JURECA", "system to simulate (DEEP or JURECA)")
	flag.Parse()

	b, err := engine.ByName(*benchName)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := hardware.ByName(*sysName)
	if err != nil {
		log.Fatal(err)
	}
	strat := parallel.DataParallel{FusionBuckets: 4}

	fmt.Printf("Profiling %s on %s at small scales (4–64 ranks, 3 repetitions)…\n\n", *benchName, sys.Name)
	camp := core.Campaign{
		Benchmark: b,
		Config: engine.RunConfig{
			System:      sys,
			Strategy:    strat,
			WeakScaling: true,
			Seed:        11,
			SampleRanks: 4,
		},
		ModelingRanks: []int{4, 8, 16, 32, 64},
		Reps:          3,
	}
	res, err := core.RunCampaign(camp)
	if err != nil {
		log.Fatal(err)
	}

	// Rank every kernel's runtime model by its predicted growth from the
	// smallest measured scale to a 4× extrapolation target.
	timeModels := res.Models.Kernel[measurement.MetricTime]
	baseline := measurement.Point{4}
	target := measurement.Point{256}
	ranked := analysis.RankByGrowth(timeModels, baseline, target)

	fmt.Printf("kernels ranked by growth trend (%s -> %s ranks):\n\n", baseline.Key(), target.Key())
	fmt.Printf("%4s  %-60s %-10s %s\n", "rank", "kernel", "growth", "model")
	for i, k := range ranked {
		if i >= 12 {
			break
		}
		fmt.Printf("%4d  %-60s ×%-9.2f %s\n", i+1, k.Callpath, k.GrowthFactor, k.Model.Function)
	}

	app := res.Models.App[epoch.AppPath]
	comm := res.Models.App[epoch.CommPath]
	fmt.Printf("\ntraining time per epoch:   T(p) = %s\n", app.Function)
	fmt.Printf("communication per epoch:   T(p) = %s\n", comm.Function)
	fmt.Printf("communication share:       %.1f%% at 4 ranks -> %.1f%% at 256 ranks\n",
		100*comm.Predict(4)/app.Predict(4), 100*comm.Predict(256)/app.Predict(256))
	fmt.Println("\nThe fastest-growing kernels are the candidates for optimization")
	fmt.Println("(tensor fusion, overlap, or a different gradient-exchange strategy).")
}
