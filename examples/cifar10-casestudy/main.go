// CIFAR-10 case study: the complete running example of the paper's
// Sections 2–3 — profile a distributed ResNet-50/CIFAR-10 training with
// the efficient sampling strategy, build models, and answer the five
// developer questions Q1–Q5.
//
// Run with:
//
//	go run ./examples/cifar10-casestudy
package main

import (
	"fmt"
	"log"

	"extradeep/internal/experiments"
)

func main() {
	fmt.Println("Running the CIFAR-10 case study (ResNet-50, weak scaling, DEEP)…")
	fmt.Println("Profiling 5 modeling + 12 evaluation configurations, 5 repetitions each,")
	fmt.Println("with the efficient sampling strategy (5 steps from 2 epochs per run).")
	fmt.Println()

	cs, err := experiments.CaseStudy(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cs.Render())

	fmt.Println("Interpretation:")
	fmt.Printf("  Q1  The model answers 'how long per epoch at 40 ranks?' without ever\n")
	fmt.Printf("      running at that scale: %.1f s.\n", cs.Q1Prediction)
	fmt.Printf("  Q2  Training time grows under weak scaling — the code does not scale\n")
	fmt.Printf("      perfectly; the model pins down by how much.\n")
	fmt.Printf("  Q3  The growth ranking identifies %s\n      as the scaling bottleneck.\n", cs.Bottleneck)
	fmt.Printf("  Q4  One epoch at 32 ranks costs %.1f core-hours.\n", cs.Q4CostAt32)
	fmt.Printf("  Q5  Under weak scaling the smallest allocation (%.0f ranks) is the most\n      cost-effective configuration.\n", cs.Q5BestRanks)
}
