// Custom benchmark: model the training performance of your own network
// and dataset. This example defines a small vision transformer-ish MLP
// stack over a synthetic dataset, runs the full Extra-Deep pipeline on it,
// and compares parallel strategies — demonstrating that the library is not
// limited to the paper's five benchmarks.
//
// Run with:
//
//	go run ./examples/custom-benchmark
package main

import (
	"fmt"
	"log"

	"extradeep/internal/core"
	"extradeep/internal/epoch"
	"extradeep/internal/simulator/dataset"
	"extradeep/internal/simulator/dnn"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

// buildModel assembles a custom architecture layer by layer using the dnn
// package's accounting: a patchify convolution followed by a deep MLP.
func buildModel() *dnn.Model {
	m := &dnn.Model{Name: "patch-mlp", InputH: 64, InputW: 64, InputC: 3}
	// 8×8 patchify convolution: 64×64×3 → 8×8×256.
	m.Layers = append(m.Layers, dnn.Layer{
		Name: "patchify", Type: dnn.Conv2D,
		OutH: 8, OutW: 8, OutC: 256,
		Params:   8 * 8 * 3 * 256,
		FwdFLOPs: 2 * 8 * 8 * 256 * (8 * 8 * 3),
	})
	m.Layers = append(m.Layers, dnn.Layer{
		Name: "flatten", Type: dnn.Flatten, OutH: 1, OutW: 1, OutC: 8 * 8 * 256,
	})
	in := 8 * 8 * 256
	for i := 0; i < 6; i++ {
		width := 2048
		m.Layers = append(m.Layers, dnn.Layer{
			Name: fmt.Sprintf("mlp%d", i), Type: dnn.Dense,
			OutH: 1, OutW: 1, OutC: width,
			Params:   float64(in*width + width),
			FwdFLOPs: 2 * float64(in) * float64(width),
		})
		m.Layers = append(m.Layers, dnn.Layer{
			Name: fmt.Sprintf("gelu%d", i), Type: dnn.Swish,
			OutH: 1, OutW: 1, OutC: width, FwdFLOPs: 4 * float64(width),
		})
		in = width
	}
	m.Layers = append(m.Layers, dnn.Layer{
		Name: "head", Type: dnn.Dense, OutH: 1, OutW: 1, OutC: 50,
		Params: float64(in*50 + 50), FwdFLOPs: 2 * float64(in) * 50,
	})
	m.Layers = append(m.Layers, dnn.Layer{
		Name: "softmax", Type: dnn.Softmax, OutH: 1, OutW: 1, OutC: 50, FwdFLOPs: 250,
	})
	return m
}

func main() {
	model := buildModel()
	if err := model.Validate(); err != nil {
		log.Fatal(err)
	}
	ds := dataset.Dataset{
		Name: "synthetic64", Kind: dataset.KindImage,
		TrainSamples: 200_000, ValSamples: 20_000, Classes: 50,
		InputShape: [3]int{64, 64, 3}, BytesPerSample: 64 * 64 * 3,
		AugmentationFactor: 1.3, PreprocessCostPerSample: 60e-6,
	}
	bench := engine.Benchmark{Name: "synthetic64", Dataset: ds, Model: model, BatchSize: 256}
	if err := bench.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom model %q: %.1f M parameters, %.2f GFLOPs forward per sample\n\n",
		model.Name, model.TotalParams()/1e6, model.FwdFLOPs()/1e9)

	// Compare parallel strategies on JURECA.
	for _, stratName := range parallel.Names() {
		strat, err := parallel.ByName(stratName)
		if err != nil {
			log.Fatal(err)
		}
		camp := core.Campaign{
			Benchmark: bench,
			Config: engine.RunConfig{
				System:      hardware.JURECA(),
				Strategy:    strat,
				WeakScaling: true,
				Seed:        31,
				SampleRanks: 4,
			},
			ModelingRanks: []int{8, 16, 24, 32, 40},
			Reps:          3,
		}
		res, err := core.RunCampaign(camp)
		if err != nil {
			log.Fatal(err)
		}
		m := res.Models.App[epoch.AppPath]
		fmt.Printf("%-9s T(p) = %-45s  predicted epoch @128 ranks: %7.2f s\n",
			stratName, m.Function.String(), m.Predict(128))
	}
	fmt.Println("\nThe per-strategy models quantify which parallelization wins at the")
	fmt.Println("target scale before committing a single large-scale run.")
}
