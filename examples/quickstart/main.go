// Quickstart: create an empirical performance model from a handful of
// measurements — the minimal Extra-Deep workflow.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"extradeep/internal/measurement"
	"extradeep/internal/modeling"
)

func main() {
	// Measured training times per epoch (seconds) of some application at
	// five scales — the minimum Extra-Deep needs to distinguish
	// logarithmic, linear and polynomial growth.
	var series measurement.Series
	series.Add(measurement.Point{2}, 161.1, 158.9, 160.2) // 3 repetitions
	series.Add(measurement.Point{4}, 165.7, 167.0, 166.1) // per measured
	series.Add(measurement.Point{8}, 172.9, 174.5, 173.3) // scale
	series.Add(measurement.Point{16}, 181.8, 183.0, 182.5)
	series.Add(measurement.Point{32}, 192.4, 190.9, 191.7)

	// Fit the Performance Model Normal Form: Extra-Deep searches the
	// hypothesis space, fits coefficients by regression, and selects the
	// best model by cross-validated SMAPE.
	model, err := modeling.FitSeries(&series, modeling.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model:    T(p) = %s\n", model.Function)
	fmt.Printf("quality:  CV-SMAPE %.2f%%, R² %.4f\n\n", model.SMAPE, model.R2)

	// Extrapolate to unmeasured scales, with 95% confidence intervals.
	for _, p := range []float64{64, 128, 256} {
		lo, hi := model.PredictInterval(0.95, p)
		fmt.Printf("T(%3.0f) = %7.1f s   (95%% CI [%.1f, %.1f])\n", p, model.Predict(p), lo, hi)
	}
}
