module extradeep

go 1.22
